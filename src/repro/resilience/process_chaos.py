"""Process-level fault injection for the sharded runtime.

PR 1's :class:`~repro.resilience.chaos.FaultInjector` attacks the *data*
— reports are dropped, duplicated, reordered, corrupted.  This module
attacks the *processes*: a :class:`ProcessChaos` plan names shard
workers to kill at chosen CYCLE boundaries, and the sharded
coordinator's :class:`~repro.core.sharding.Supervisor` executes (or
arranges) the kills while the detection run is in flight.  The recovery
invariant under test: the merged prediction log of a murdered run is
byte-identical to the unfaulted single-process batched run.

Three kill modes:

* ``"sigkill"`` — the coordinator SIGKILLs the worker right after
  broadcasting the chosen CYCLE marker (hard external death: OOM
  killer, ``kill -9``, node crash);
* ``"raise"``   — the worker raises an unhandled exception after
  processing the chosen marker (internal bug; the worker dies with a
  traceback and a nonzero exit code);
* ``"hang"``    — the worker stops making progress after the chosen
  marker without dying (livelock / stuck syscall); only the
  supervisor's missed-heartbeat deadline can catch this one.

Plans are frozen and seedable (:meth:`ProcessChaos.seeded`) so a chaos
run is exactly reproducible, mirroring the data-layer ChaosSchedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.common.rng import SeedLike, as_generator

__all__ = ["ProcessChaos", "KILL_MODES"]

#: Supported kill modes, in the documentation order above.
KILL_MODES = ("sigkill", "raise", "hang")


@dataclass(frozen=True)
class ProcessChaos:
    """Declarative worker-kill plan for one sharded run.

    Parameters
    ----------
    kills : tuple of (cycle, shard, mode)
        Each entry murders worker ``shard`` at CYCLE boundary ``cycle``
        (1-based: the kill lands right after the ``cycle``-th CYCLE
        marker is broadcast / processed) using one of
        :data:`KILL_MODES`.  A worker is killed at most once per plan —
        respawned workers are never re-targeted, so a plan cannot
        produce an infinite crash loop by itself.
    """

    kills: Tuple[Tuple[int, int, str], ...] = ()

    def __post_init__(self) -> None:
        seen_shards = set()
        norm = []
        for cycle, shard, mode in self.kills:
            cycle, shard = int(cycle), int(shard)
            if cycle < 1:
                raise ValueError(f"kill cycle must be >= 1: {cycle}")
            if shard < 0:
                raise ValueError(f"kill shard must be >= 0: {shard}")
            if mode not in KILL_MODES:
                raise ValueError(
                    f"unknown kill mode {mode!r}; expected one of {KILL_MODES}"
                )
            if shard in seen_shards:
                raise ValueError(
                    f"shard {shard} targeted twice; one kill per shard"
                )
            seen_shards.add(shard)
            norm.append((cycle, shard, mode))
        object.__setattr__(self, "kills", tuple(sorted(norm)))

    @property
    def is_noop(self) -> bool:
        return not self.kills

    @classmethod
    def seeded(
        cls,
        seed: SeedLike,
        n_cycles: int,
        n_shards: int,
        n_kills: int = 1,
        modes: Tuple[str, ...] = ("sigkill",),
    ) -> "ProcessChaos":
        """Draw a reproducible kill plan from a seed.

        Victims (distinct shards) and kill cycles are drawn uniformly:
        cycles from ``[1, n_cycles]``, one mode per kill from ``modes``.
        ``n_kills`` is clamped to ``n_shards`` (one kill per shard).
        """
        if n_cycles < 1:
            raise ValueError(f"n_cycles must be >= 1: {n_cycles}")
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1: {n_shards}")
        rng = as_generator(seed)
        n_kills = min(int(n_kills), int(n_shards))
        victims = rng.permutation(n_shards)[:n_kills]
        kills: List[Tuple[int, int, str]] = []
        for shard in victims.tolist():
            cycle = int(rng.integers(1, n_cycles, endpoint=True))
            mode = modes[int(rng.integers(len(modes)))]
            kills.append((cycle, int(shard), mode))
        return cls(kills=tuple(kills))

    # ------------------------------------------------------------------
    def sigkills_at(self, cycle: int) -> List[int]:
        """Shards the *coordinator* must SIGKILL right after CYCLE
        marker ``cycle``."""
        return [s for c, s, m in self.kills if c == cycle and m == "sigkill"]

    def worker_fault(self, shard: int) -> Tuple[int, int]:
        """Worker-side fault plan for one shard's *initial* spawn:
        ``(raise_at_cycle, hang_at_cycle)`` with 0 meaning "never".

        Respawned workers must get ``(0, 0)`` — re-arming a raise on the
        respawn would crash-loop the recovery forever.
        """
        raise_at = hang_at = 0
        for cycle, s, mode in self.kills:
            if s != shard:
                continue
            if mode == "raise":
                raise_at = cycle
            elif mode == "hang":
                hang_at = cycle
        return raise_at, hang_at

    def describe(self) -> str:
        """One-line human summary of the plan."""
        if not self.kills:
            return "no kills"
        return ", ".join(
            f"{mode} shard {shard} @ cycle {cycle}"
            for cycle, shard, mode in self.kills
        )
