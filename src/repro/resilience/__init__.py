"""Resilience: fault injection + graceful degradation for the mechanism.

The paper validates the automated mechanism on a clean testbed; a
production AmLight-class deployment loses, duplicates, and reorders
telemetry under the very flood conditions the detector exists to catch.
This package makes those failure modes first-class:

* :mod:`repro.resilience.chaos` — :class:`ChaosSchedule` +
  :class:`FaultInjector`: seeded, declarative fault injection on the
  telemetry feed (uniform and Gilbert-Elliott burst loss, duplication,
  bounded reordering, field corruption, collector outages).
* :mod:`repro.resilience.degradation` — :class:`Watchdog` module-health
  tracking with control-plane alerts, and bounded exponential-backoff
  retry (used by the CentralServer's database polls).
* :mod:`repro.resilience.harness` — :class:`ResilienceHarness`: replays
  the Table VI testbed experiment under a chaos schedule and reports
  accuracy/latency deltas against the clean run.
"""

from .chaos import ChaosSchedule, FaultInjector, FaultStats
from .degradation import (
    HealthAlert,
    HealthLogSink,
    HealthSink,
    ModuleHealth,
    Watchdog,
    retry_with_backoff,
)

__all__ = [
    "ChaosSchedule",
    "FaultInjector",
    "FaultStats",
    "HealthAlert",
    "HealthLogSink",
    "HealthSink",
    "ModuleHealth",
    "Watchdog",
    "retry_with_backoff",
    "ResilienceHarness",
    "ResilienceReport",
    "ModelFailureReport",
]

_LAZY = {"ResilienceHarness", "ResilienceReport", "ModelFailureReport"}


def __getattr__(name: str):
    # The harness pulls in repro.analysis (and through it repro.core);
    # loading it lazily keeps `repro.core.mechanism -> repro.resilience`
    # imports acyclic.
    if name in _LAZY:
        from . import harness

        return getattr(harness, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
