"""Fault injection for the telemetry feed.

The paper's testbed (§IV-C) is a clean room: every INT report reaches
the collector exactly once, in order, with every field intact.  A
production deployment is not — telemetry rides UDP through the very
congestion an attack creates, so reports are lost (independently and in
bursts), duplicated, reordered, corrupted, and sometimes the collector
itself blinks out for a window.  :class:`FaultInjector` reproduces all
of those failure modes between the telemetry source and the
collection module, driven by a declarative :class:`ChaosSchedule` and a
seeded RNG so every chaos run is exactly reproducible.

The injector has three modes sharing one fault pipeline:

* **streaming** — wrap a collection module (anything with
  ``feed_record``) and interpose on every record, the way
  :meth:`~repro.core.mechanism.AutomatedDDoSDetector.run_stream`
  consumes telemetry;
* **transform** — :meth:`FaultInjector.transform_batch` runs slices
  through the same per-row pipeline but *returns* the delivered rows;
  the sharded coordinator uses it to inject faults before partitioning
  so fault replay is independent of the worker count;
* **batch** — :meth:`FaultInjector.apply` transforms a whole record
  array at once, for offline ablations that retrain on degraded
  captures.

Per-report fault order: outage window → burst (Gilbert-Elliott) loss →
uniform loss → field corruption → duplication → bounded reorder hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import List, Optional, Tuple

import numpy as np

from repro.common.rng import SeedLike, as_generator

__all__ = ["ChaosSchedule", "FaultStats", "FaultInjector"]

#: Telemetry payload fields that corruption may scramble by default.
#: The five-tuple is deliberately excluded: corrupting flow identifiers
#: silently re-keys a flow, which is a different failure mode (and would
#: break ground-truth bookkeeping in experiments).
DEFAULT_CORRUPT_FIELDS = ("length", "queue_occupancy", "hop_latency", "ingress_ts")


@dataclass(frozen=True)
class ChaosSchedule:
    """Declarative description of the faults to inject.

    All rates are per-report probabilities in ``[0, 1]``.  The default
    instance is a no-op (clean feed).  Frozen and tuple-valued so a
    schedule can key an experiment cache.

    Parameters
    ----------
    drop_rate : float
        Independent (uniform) report loss.
    burst_p, burst_r, burst_loss : float
        Gilbert-Elliott burst loss: per-report probability of entering
        the bad state (``burst_p``), of leaving it (``burst_r``), and of
        losing a report while in it (``burst_loss``).  ``burst_p = 0``
        disables the chain.  The long-run loss this contributes is
        ``burst_loss * burst_p / (burst_p + burst_r)``.
    duplicate_rate : float
        Probability a delivered report is delivered twice back-to-back
        (UDP duplication).
    reorder_rate, reorder_depth : float, int
        Probability a report is held back, and the maximum number of
        subsequent reports that may overtake it (bounded displacement).
    corrupt_rate : float
        Probability one field of a delivered report is scrambled.
    corrupt_fields : tuple of str
        Candidate fields for corruption; fields absent from the record
        dtype are ignored.
    outages_ns : tuple of (start_ns, end_ns)
        Collector outage windows over the record timestamp: every report
        stamped inside a window is lost.
    """

    drop_rate: float = 0.0
    burst_p: float = 0.0
    burst_r: float = 0.0
    burst_loss: float = 1.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    reorder_depth: int = 4
    corrupt_rate: float = 0.0
    corrupt_fields: Tuple[str, ...] = DEFAULT_CORRUPT_FIELDS
    outages_ns: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        for name in ("drop_rate", "burst_p", "burst_r", "burst_loss",
                     "duplicate_rate", "reorder_rate", "corrupt_rate"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]: {v}")
        if self.reorder_depth < 1:
            raise ValueError(f"reorder_depth must be >= 1: {self.reorder_depth}")
        if self.burst_p > 0.0 and self.burst_r <= 0.0:
            raise ValueError("burst_r must be > 0 when burst_p > 0 "
                             "(the bad state would be absorbing)")
        # Normalize mutable inputs so schedules stay hashable.
        object.__setattr__(self, "corrupt_fields", tuple(self.corrupt_fields))
        object.__setattr__(
            self, "outages_ns",
            tuple((int(a), int(b)) for a, b in self.outages_ns),
        )
        for a, b in self.outages_ns:
            if b <= a:
                raise ValueError(f"empty outage window: ({a}, {b})")

    @property
    def is_noop(self) -> bool:
        """True when the schedule injects nothing."""
        return (
            self.drop_rate == 0.0
            and self.burst_p == 0.0
            and self.duplicate_rate == 0.0
            and self.reorder_rate == 0.0
            and self.corrupt_rate == 0.0
            and not self.outages_ns
        )

    @property
    def expected_loss(self) -> float:
        """Long-run loss fraction from the stationary loss processes
        (outage windows excluded — they depend on the trace timeline)."""
        burst = 0.0
        if self.burst_p > 0.0:
            burst = self.burst_loss * self.burst_p / (self.burst_p + self.burst_r)
        # Independent processes: survive both to be delivered.
        return 1.0 - (1.0 - self.drop_rate) * (1.0 - burst)

    def describe(self) -> str:
        """One-line human summary of the active faults."""
        parts = []
        if self.drop_rate:
            parts.append(f"drop={self.drop_rate:.1%}")
        if self.burst_p:
            parts.append(
                f"burst(p={self.burst_p:g},r={self.burst_r:g},"
                f"loss={self.burst_loss:g})"
            )
        if self.duplicate_rate:
            parts.append(f"dup={self.duplicate_rate:.1%}")
        if self.reorder_rate:
            parts.append(
                f"reorder={self.reorder_rate:.1%}(depth={self.reorder_depth})"
            )
        if self.corrupt_rate:
            parts.append(f"corrupt={self.corrupt_rate:.1%}")
        if self.outages_ns:
            parts.append(f"outages={len(self.outages_ns)}")
        return " + ".join(parts) if parts else "clean"


@dataclass
class FaultStats:
    """Bookkeeping of everything the injector did to the stream."""

    offered: int = 0
    delivered: int = 0
    dropped_uniform: int = 0
    dropped_burst: int = 0
    dropped_outage: int = 0
    duplicated: int = 0
    reordered: int = 0
    corrupted: int = 0

    @property
    def dropped(self) -> int:
        return self.dropped_uniform + self.dropped_burst + self.dropped_outage

    @property
    def loss_fraction(self) -> float:
        return self.dropped / self.offered if self.offered else 0.0

    def as_dict(self) -> dict:
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["dropped"] = self.dropped
        out["loss_fraction"] = self.loss_fraction
        return out


class FaultInjector:
    """Applies a :class:`ChaosSchedule` to a telemetry record stream.

    Parameters
    ----------
    schedule : ChaosSchedule
    inner : object, optional
        Downstream collection module (``IntDataCollection`` /
        ``SFlowDataCollection`` or anything with ``feed_record``).
        Required for streaming mode; :meth:`apply` works without it.
    seed : int | numpy Generator | None
        Fault RNG, funneled through :func:`repro.common.rng.as_generator`
        so chaos runs are reproducible.
    ts_field : str, optional
        Record field holding the timestamp outage windows apply to;
        auto-detected (``ts_report`` for INT rows, ``ts_collector`` for
        sFlow rows) when omitted.
    """

    _TS_CANDIDATES = ("ts_report", "ts_collector", "ts_sample")

    def __init__(
        self,
        schedule: ChaosSchedule,
        inner: Optional[object] = None,
        seed: SeedLike = None,
        ts_field: Optional[str] = None,
    ) -> None:
        self.schedule = schedule
        self.inner = inner
        self.rng = as_generator(seed)
        self.ts_field = ts_field
        self.stats = FaultStats()
        self._bad_state = False  # Gilbert-Elliott channel state
        self._held: List[List] = []  # [countdown, row, original_index]
        self._index = 0

    # ------------------------------------------------------------------
    # streaming mode (drop-in for a collection module)
    # ------------------------------------------------------------------
    def feed_record(self, row: np.void) -> None:
        """Interpose on one record; forwards 0..2 records downstream."""
        if self.inner is None:
            raise RuntimeError("streaming mode needs an inner collection module")
        for out_row, _ in self._step(row, self._index):
            self.inner.feed_record(out_row)
        self._index += 1

    def feed_batch(self, records: np.ndarray) -> None:
        """Interpose on a record slice; forwards survivors as one batch.

        The fault pipeline still runs row-by-row, so the RNG draw
        sequence — and therefore every drop/corrupt/duplicate/reorder
        decision — is identical to streaming the same rows through
        :meth:`feed_record`.  Only the downstream hand-off is batched:
        emissions are buffered in delivery order and forwarded with one
        ``inner.feed_batch`` call per slice.
        """
        if self.inner is None:
            raise RuntimeError("streaming mode needs an inner collection module")
        rows: List[np.void] = []
        for i in range(records.shape[0]):
            for out_row, _ in self._step(records[i], self._index):
                rows.append(out_row)
            self._index += 1
        self._forward_batch(rows, records.dtype)

    @staticmethod
    def _materialize(rows: List[np.void], dtype: np.dtype) -> np.ndarray:
        out = np.empty(len(rows), dtype=dtype)
        for i, r in enumerate(rows):
            out[i] = r
        return out

    def _forward_batch(self, rows: List[np.void], dtype: np.dtype) -> None:
        if not rows:
            return
        self.inner.feed_batch(self._materialize(rows, dtype))

    # ------------------------------------------------------------------
    # transform mode (sharded coordinator)
    # ------------------------------------------------------------------
    def transform_batch(self, records: np.ndarray) -> np.ndarray:
        """Run a record slice through the fault pipeline and *return* the
        delivered rows instead of forwarding them downstream.

        This is the sharded coordinator's mode: chaos must run on the
        unified stream *before* partitioning, so the injected fault
        sequence is a property of the run — not of the worker count —
        and any shard layout replays the identical delivered stream.
        The per-row ``_step`` walk is shared with :meth:`feed_batch`,
        so the RNG draw sequence (and therefore every fault decision)
        matches a single-process run of the same slices exactly.  No
        inner module is required.
        """
        self._last_dtype = records.dtype
        rows: List[np.void] = []
        for i in range(records.shape[0]):
            for out_row, _ in self._step(records[i], self._index):
                rows.append(out_row)
            self._index += 1
        return self._materialize(rows, records.dtype)

    def transform_flush(self) -> np.ndarray:
        """Release held (reordered) reports as an array; the transform
        counterpart of :meth:`flush`."""
        released = self._drain()
        dtype = getattr(self, "_last_dtype", None)
        if dtype is None:
            if not released:
                raise RuntimeError(
                    "transform_flush before any transform_batch: "
                    "record dtype unknown"
                )
            dtype = released[0][0].dtype
        return self._materialize([row for row, _ in released], dtype)

    def flush(self, batched: bool = False) -> int:
        """Release every held (reordered) report; returns the count.

        With ``batched`` set, the released reports go downstream as one
        ``feed_batch`` slice instead of per-record calls.
        """
        released = self._drain()
        if self.inner is not None and released:
            if batched:
                self._forward_batch(
                    [row for row, _ in released], released[0][0].dtype
                )
            else:
                for out_row, _ in released:
                    self.inner.feed_record(out_row)
        return len(released)

    # ------------------------------------------------------------------
    # checkpoint/restore
    # ------------------------------------------------------------------
    def state_snapshot(self) -> dict:
        """Mid-stream injector state as a plain picklable dict: the RNG
        position (``bit_generator.state``), the Gilbert-Elliott channel
        state, the reorder hold buffer, the stream index, and the fault
        counters.  A restored injector continues the fault walk with the
        exact draw sequence the checkpointed one would have produced."""
        return {
            "rng_state": self.rng.bit_generator.state,
            "bad_state": self._bad_state,
            "held": [[c, row.copy(), i] for c, row, i in self._held],
            "index": self._index,
            "stats": {f.name: getattr(self.stats, f.name)
                      for f in fields(self.stats)},
        }

    def state_restore(self, state: dict) -> None:
        """Resume the fault walk from a :meth:`state_snapshot` capture
        (the schedule itself is construction config, not state)."""
        self.rng.bit_generator.state = state["rng_state"]
        self._bad_state = bool(state["bad_state"])
        self._held = [[c, row, i] for c, row, i in state["held"]]
        self._index = int(state["index"])
        for name, value in state["stats"].items():
            setattr(self.stats, name, value)

    # ------------------------------------------------------------------
    # batch mode (offline ablations)
    # ------------------------------------------------------------------
    def apply(
        self, records: np.ndarray, vectorized: bool = True
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Transform a whole record array through the fault pipeline.

        Returns ``(faulted_records, source_index)`` where
        ``source_index[i]`` is the row of ``records`` that produced
        output row ``i`` — the handle callers use to carry labels or
        ground truth through drops, duplicates, and reorderings.

        When the schedule is pure loss (drop/outage only) and
        ``vectorized`` is left on, a mask-based fast path is used; its
        RNG draws differ from the streaming path's, so use
        ``vectorized=False`` when byte-exact parity with streaming
        matters.
        """
        s = self.schedule
        pure_loss = (
            s.duplicate_rate == 0.0
            and s.reorder_rate == 0.0
            and s.corrupt_rate == 0.0
            and s.burst_p == 0.0
        )
        if vectorized and pure_loss:
            return self._apply_loss_only(records)

        rows: List[np.void] = []
        idx: List[int] = []
        for i in range(records.shape[0]):
            for out_row, src in self._step(records[i], self._index):
                rows.append(out_row)
                idx.append(src)
            self._index += 1
        for out_row, src in self._drain():
            rows.append(out_row)
            idx.append(src)
        out = np.empty(len(rows), dtype=records.dtype)
        for i, r in enumerate(rows):
            out[i] = r
        return out, np.asarray(idx, dtype=np.int64)

    def _apply_loss_only(self, records: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        n = records.shape[0]
        self.stats.offered += n
        keep = np.ones(n, dtype=bool)
        ts_name = self._resolve_ts_field(records.dtype)
        if self.schedule.outages_ns and ts_name is not None:
            ts = records[ts_name].astype(np.int64)
            for a, b in self.schedule.outages_ns:
                hit = (ts >= a) & (ts < b) & keep
                self.stats.dropped_outage += int(hit.sum())
                keep &= ~hit
        if self.schedule.drop_rate > 0.0:
            u = self.rng.random(n) < self.schedule.drop_rate
            hit = u & keep
            self.stats.dropped_uniform += int(hit.sum())
            keep &= ~hit
        idx = np.flatnonzero(keep) + (self._index)
        self._index += n
        self.stats.delivered += int(keep.sum())
        return records[keep].copy(), idx.astype(np.int64)

    # ------------------------------------------------------------------
    # fault pipeline
    # ------------------------------------------------------------------
    def _resolve_ts_field(self, dtype: np.dtype) -> Optional[str]:
        if self.ts_field is not None:
            return self.ts_field if self.ts_field in (dtype.names or ()) else None
        for name in self._TS_CANDIDATES:
            if name in (dtype.names or ()):
                return name
        return None

    def _in_outage(self, row: np.void) -> bool:
        if not self.schedule.outages_ns:
            return False
        name = self._resolve_ts_field(row.dtype)
        if name is None:
            return False
        ts = int(row[name])
        return any(a <= ts < b for a, b in self.schedule.outages_ns)

    def _burst_lost(self) -> bool:
        s = self.schedule
        if s.burst_p <= 0.0:
            return False
        # Advance the two-state chain, then sample loss in the bad state.
        if self._bad_state:
            if self.rng.random() < s.burst_r:
                self._bad_state = False
        elif self.rng.random() < s.burst_p:
            self._bad_state = True
        return self._bad_state and self.rng.random() < s.burst_loss

    def _corrupt(self, row: np.void) -> np.void:
        candidates = [f for f in self.schedule.corrupt_fields
                      if f in (row.dtype.names or ())]
        if not candidates:
            return row
        name = candidates[int(self.rng.integers(len(candidates)))]
        out = row.copy()
        kind = out.dtype[name]
        if kind.kind in "ui":
            info = np.iinfo(kind)
            # int64 fields hold ns quantities; keep corruption physical
            # (a garbage-but-representable value) rather than astronomical.
            hi = min(int(info.max), 2**32 - 1)
            out[name] = int(self.rng.integers(int(info.min), hi, endpoint=True))
        else:
            out[name] = float(self.rng.random()) * 1e4
        self.stats.corrupted += 1
        return out

    def _step(self, row: np.void, index: int) -> List[Tuple[np.void, int]]:
        """Run one report through the pipeline; returns emissions in
        delivery order as ``(row, source_index)`` pairs."""
        s = self.schedule
        self.stats.offered += 1
        emissions: List[Tuple[np.void, int]] = []

        dropped = False
        if self._in_outage(row):
            self.stats.dropped_outage += 1
            dropped = True
        elif self._burst_lost():
            self.stats.dropped_burst += 1
            dropped = True
        elif s.drop_rate > 0.0 and self.rng.random() < s.drop_rate:
            self.stats.dropped_uniform += 1
            dropped = True

        if not dropped:
            out = row
            if s.corrupt_rate > 0.0 and self.rng.random() < s.corrupt_rate:
                out = self._corrupt(out)
            duplicate = (
                s.duplicate_rate > 0.0 and self.rng.random() < s.duplicate_rate
            )
            if s.reorder_rate > 0.0 and self.rng.random() < s.reorder_rate:
                # Held back: up to `reorder_depth` later reports overtake.
                countdown = int(self.rng.integers(1, s.reorder_depth, endpoint=True))
                self._held.append([countdown, out, index])
                self.stats.reordered += 1
                if duplicate:
                    # The duplicate takes the fast path — itself a
                    # reordering, as with real multi-path duplication.
                    emissions.append((out, index))
                    self.stats.duplicated += 1
            else:
                emissions.append((out, index))
                if duplicate:
                    emissions.append((out, index))
                    self.stats.duplicated += 1

        # Age the reorder buffer by one offered report and release
        # whatever has been overtaken enough, in original order.
        if self._held:
            for h in self._held:
                h[0] -= 1
            ready = [h for h in self._held if h[0] <= 0]
            if ready:
                self._held = [h for h in self._held if h[0] > 0]
                ready.sort(key=lambda h: h[2])
                emissions.extend((h[1], h[2]) for h in ready)

        self.stats.delivered += len(emissions)
        return emissions

    def _drain(self) -> List[Tuple[np.void, int]]:
        ready = sorted(self._held, key=lambda h: h[2])
        self._held = []
        out = [(h[1], h[2]) for h in ready]
        self.stats.delivered += len(out)
        return out
