"""Attack traffic generators.

Reimplementations (at the header/timing level) of the tools the paper
used to inject attacks into the AmLight capture (Table I):

* :func:`syn_scan` — ``hping3``/nmap-style TCP SYN port sweep: one small
  SYN per probed port, RST (closed) or SYN-ACK (open) responses.
* :func:`udp_scan` — UDP port sweep: small probes, mostly silent targets,
  occasional ICMP port-unreachable backscatter.
* :func:`syn_flood` — ``hping3 --flood --rand-source``: high-rate SYNs
  with spoofed random sources; partial SYN-ACK backscatter until the
  victim's accept queue saturates.
* :func:`slowloris` — gkbrk/slowloris: a modest number of long-lived
  connections each trickling partial HTTP header lines on a keepalive
  timer.  Low and slow — few packets, tiny payloads, long gaps — which is
  why sampling-based monitoring misses it (paper Fig 5).

All generators label every emitted packet (probes *and* victim
responses) with their :class:`~repro.traffic.trace.AttackType`.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import as_generator
from repro.dataplane.packet import Protocol, TCPFlags

from .flows import EPHEMERAL_HI, EPHEMERAL_LO, TraceBuilder, packet_block
from .trace import AttackType, Trace

__all__ = ["syn_scan", "udp_scan", "syn_flood", "slowloris"]

# hping3/nmap craft minimal headers: 40-byte SYN probes (no TCP
# options), 40-byte RSTs back.  Real client stacks send 60-74 byte SYNs
# (MSS/SACK/wscale/timestamps), which is what makes crafted attack
# packets separable from benign handshakes at the feature level.
_SYN_LEN = 40
_RST_LEN = 40
# The victim's SYN-ACK backscatter comes from a real server stack and
# carries TCP options (66-74 B) — unlike the attacker's bare 40-byte SYNs.


def _jittered_times(start_ns, end_ns, rate_pps, rng) -> np.ndarray:
    """Exponentially spaced event times at mean rate ``rate_pps``."""
    if end_ns <= start_ns:
        raise ValueError("empty attack window")
    if rate_pps <= 0:
        raise ValueError(f"rate must be positive: {rate_pps}")
    span_s = (end_ns - start_ns) / 1e9
    n = max(1, rng.poisson(rate_pps * span_s))
    gaps = rng.exponential(1e9 / rate_pps, size=n)
    t = start_ns + np.cumsum(gaps)
    return t[t < end_ns].astype(np.int64)


def syn_scan(
    attacker_ip: int,
    target_ip: int,
    start_ns: int,
    end_ns: int,
    rate_pps: float = 500.0,
    port_start: int = 1,
    open_ports: tuple = (22, 80, 443),
    filtered_fraction: float = 0.25,
    retx_gap_ns: int = 2_000_000,
    seed=None,
) -> Trace:
    """TCP SYN port scan from a single attacker host.

    Ports are swept sequentially (wrapping at 65535 back to 1); each
    probe uses a fresh ephemeral source port, so under the paper's
    five-tuple flow definition every probe is its own flow.

    Closed ports answer with a RST (a two-packet flow); a
    ``filtered_fraction`` of ports silently drop the probe, so — as
    nmap and hping do — the scanner *retransmits* twice, with gaps of
    roughly ``retx_gap_ns`` and its double.  Retransmission flows (2–3
    identical tiny SYNs, second-scale spacing at the tool's native
    timing) are a signature part of real scan traffic.
    """
    rng = as_generator(seed)
    t = _jittered_times(start_ns, end_ns, rate_pps, rng)
    n = t.shape[0]
    if n == 0:
        return Trace.empty()
    dst_ports = ((port_start - 1 + np.arange(n)) % 65535 + 1).astype(np.uint16)
    src_ports = rng.integers(EPHEMERAL_LO, EPHEMERAL_HI + 1, size=n).astype(np.uint16)

    builder = TraceBuilder()
    builder.add(
        packet_block(
            t, attacker_ip, target_ip, src_ports, dst_ports,
            Protocol.TCP, int(TCPFlags.SYN), _SYN_LEN,
            label=1, attack_type=AttackType.SYN_SCAN,
        )
    )
    filtered = rng.random(n) < filtered_fraction
    # Responses from non-filtered ports: SYN-ACK (open) or RST (closed).
    answered = ~filtered
    if answered.any():
        m = int(answered.sum())
        resp_delay = rng.integers(200_000, 800_000, size=m)
        open_mask = np.isin(
            dst_ports[answered], np.asarray(open_ports, dtype=np.uint16)
        )
        flags = np.where(
            open_mask, int(TCPFlags.SYNACK), int(TCPFlags.RST | TCPFlags.ACK)
        )
        builder.add(
            packet_block(
                t[answered] + resp_delay, target_ip, attacker_ip,
                dst_ports[answered], src_ports[answered],
                Protocol.TCP, flags.astype(np.uint8), _RST_LEN,
                label=1, attack_type=AttackType.SYN_SCAN,
            )
        )
    # Retransmissions toward filtered ports: same five-tuple, same SYN.
    if filtered.any():
        for k in (1, 2):
            jitter = rng.uniform(0.8, 1.2, size=int(filtered.sum()))
            retx_t = (t[filtered] + k * retx_gap_ns * jitter).astype(np.int64)
            keep = retx_t < end_ns
            if not keep.any():
                continue
            builder.add(
                packet_block(
                    retx_t[keep], attacker_ip, target_ip,
                    src_ports[filtered][keep], dst_ports[filtered][keep],
                    Protocol.TCP, int(TCPFlags.SYN), _SYN_LEN,
                    label=1, attack_type=AttackType.SYN_SCAN,
                )
            )
    return builder.build()


def udp_scan(
    attacker_ip: int,
    target_ip: int,
    start_ns: int,
    end_ns: int,
    rate_pps: float = 300.0,
    port_start: int = 1,
    icmp_response_fraction: float = 0.3,
    retx_gap_ns: int = 2_000_000,
    seed=None,
) -> Trace:
    """UDP port scan: tiny probes, rate-limited ICMP unreachable replies.

    Real hosts rate-limit ICMP errors, so only a fraction of probes are
    answered; unanswered ports are indistinguishable from open ones, so
    the scanner (as nmap does) retransmits the probe once after
    ``retx_gap_ns``.
    """
    rng = as_generator(seed)
    t = _jittered_times(start_ns, end_ns, rate_pps, rng)
    n = t.shape[0]
    if n == 0:
        return Trace.empty()
    dst_ports = ((port_start - 1 + np.arange(n)) % 65535 + 1).astype(np.uint16)
    src_ports = rng.integers(EPHEMERAL_LO, EPHEMERAL_HI + 1, size=n).astype(np.uint16)
    probe_len = rng.integers(28, 44, size=n)  # empty/near-empty UDP probes

    builder = TraceBuilder()
    builder.add(
        packet_block(
            t, attacker_ip, target_ip, src_ports, dst_ports,
            Protocol.UDP, 0, probe_len,
            label=1, attack_type=AttackType.UDP_SCAN,
        )
    )
    answered = rng.random(n) < icmp_response_fraction
    if answered.any():
        # A real ICMP port-unreachable embeds the offending datagram's
        # IP header + 8 payload bytes: ~70 bytes on the wire.
        resp_delay = rng.integers(200_000, 900_000, size=int(answered.sum()))
        builder.add(
            packet_block(
                t[answered] + resp_delay, target_ip, attacker_ip,
                0, 0, Protocol.ICMP, 0, 70,
                label=1, attack_type=AttackType.UDP_SCAN,
            )
        )
    silent = ~answered
    if silent.any():
        jitter = rng.uniform(0.8, 1.2, size=int(silent.sum()))
        retx_t = (t[silent] + retx_gap_ns * jitter).astype(np.int64)
        keep = retx_t < end_ns
        if keep.any():
            builder.add(
                packet_block(
                    retx_t[keep], attacker_ip, target_ip,
                    src_ports[silent][keep], dst_ports[silent][keep],
                    Protocol.UDP, 0, probe_len[silent][keep],
                    label=1, attack_type=AttackType.UDP_SCAN,
                )
            )
    return builder.build()


def syn_flood(
    target_ip: int,
    target_port: int,
    start_ns: int,
    end_ns: int,
    rate_pps: float = 20000.0,
    spoof_base_ip: int = 0x01000000,
    spoof_space: int = 2**24,
    backscatter_fraction: float = 0.15,
    seed=None,
) -> Trace:
    """``hping3 --flood --rand-source`` style SYN flood.

    Every SYN carries a random spoofed source address and port, so the
    victim accumulates half-open connections and each packet is its own
    flow.  A fraction of SYNs still earn a SYN-ACK before the accept
    queue saturates (backscatter), after which the victim silently drops.
    """
    rng = as_generator(seed)
    t = _jittered_times(start_ns, end_ns, rate_pps, rng)
    n = t.shape[0]
    if n == 0:
        return Trace.empty()
    src_ips = (spoof_base_ip + rng.integers(0, spoof_space, size=n)).astype(np.uint32)
    src_ports = rng.integers(1024, 65536, size=n).astype(np.uint16)

    builder = TraceBuilder()
    builder.add(
        packet_block(
            t, src_ips, target_ip, src_ports, target_port,
            Protocol.TCP, int(TCPFlags.SYN), _SYN_LEN,
            label=1, attack_type=AttackType.SYN_FLOOD,
        )
    )
    if backscatter_fraction > 0:
        answered = rng.random(n) < backscatter_fraction
        m = int(answered.sum())
        if m:
            resp_delay = rng.integers(100_000, 500_000, size=m)
            synack_len = rng.integers(66, 75, size=m)
            builder.add(
                packet_block(
                    t[answered] + resp_delay, target_ip, src_ips[answered],
                    target_port, src_ports[answered],
                    Protocol.TCP, int(TCPFlags.SYNACK), synack_len,
                    label=1, attack_type=AttackType.SYN_FLOOD,
                )
            )
    return builder.build()


def slowloris(
    attacker_ip: int,
    target_ip: int,
    target_port: int,
    start_ns: int,
    end_ns: int,
    connections: int = 8,
    keepalive_ns: int = 120_000_000,
    rtt_ns: int = 2_000_000,
    seed=None,
) -> Trace:
    """SlowLoris: few connections, tiny header fragments, long gaps.

    Each connection handshakes once, then sends an ``X-a: b\\r\\n``-sized
    fragment every ``keepalive_ns`` (jittered ±25%) until the episode
    ends; the server ACKs each fragment.  Total packet volume is orders
    of magnitude below a flood — the property that blinds 1:N sampling.
    """
    rng = as_generator(seed)
    if connections < 1:
        raise ValueError(f"connections must be >= 1: {connections}")
    half = rtt_ns // 2
    builder = TraceBuilder()
    src_ports = rng.choice(
        np.arange(EPHEMERAL_LO, EPHEMERAL_HI + 1), size=connections, replace=False
    ).astype(np.uint16)
    for c in range(connections):
        sport = int(src_ports[c])
        t0 = start_ns + int(rng.integers(0, max(1, keepalive_ns // 2)))
        if t0 >= end_ns:
            continue
        # handshake — slowloris runs over a real OS TCP stack, so the
        # handshake looks like any client's (full-option SYN, plain ACK)
        builder.add(
            packet_block(
                np.array([t0]), attacker_ip, target_ip, sport, target_port,
                Protocol.TCP, int(TCPFlags.SYN), int(rng.integers(60, 79)),
                label=1, attack_type=AttackType.SLOWLORIS,
            )
        )
        builder.add(
            packet_block(
                np.array([t0 + half]), target_ip, attacker_ip, target_port, sport,
                Protocol.TCP, int(TCPFlags.SYNACK), int(rng.integers(60, 75)),
                label=1, attack_type=AttackType.SLOWLORIS,
            )
        )
        builder.add(
            packet_block(
                np.array([t0 + 2 * half]), attacker_ip, target_ip, sport, target_port,
                Protocol.TCP, int(TCPFlags.ACK), 54,
                label=1, attack_type=AttackType.SLOWLORIS,
            )
        )
        # keepalive trickle
        n_keep = max(1, int((end_ns - t0) // keepalive_ns) + 2)
        gaps = rng.uniform(0.75, 1.25, size=n_keep) * keepalive_ns
        times = (t0 + 2 * half + np.cumsum(gaps)).astype(np.int64)
        times = times[times < end_ns]
        if times.size == 0:
            continue
        frag_len = rng.integers(60, 110, size=times.size)
        builder.add(
            packet_block(
                times, attacker_ip, target_ip, sport, target_port,
                Protocol.TCP, int(TCPFlags.PSHACK), frag_len,
                label=1, attack_type=AttackType.SLOWLORIS,
            )
        )
        builder.add(
            packet_block(
                times + half, target_ip, attacker_ip, target_port, sport,
                Protocol.TCP, int(TCPFlags.ACK), 54,
                label=1, attack_type=AttackType.SLOWLORIS,
            )
        )
    return builder.build()
