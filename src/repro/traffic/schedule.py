"""Attack-episode schedule (paper Table I).

The paper injected eleven attack episodes into the June 6–11 2024 capture
window.  :func:`table1_schedule` reconstructs that timetable verbatim;
:class:`CampaignSchedule` maps the real timestamps onto the (compressed)
simulation timeline and provides ground-truth labeling of arbitrary
packet timestamp arrays.

One quirk reproduced faithfully: Table I lists the second UDP-scan
episode ending at ``16:59:99`` — an invalid second field.  We read it as
``16:59:59`` (the obvious typo fix) and note it here so a reader
diffing against the paper sees why.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import List, Sequence

import numpy as np

from .trace import AttackType

__all__ = ["Episode", "CampaignSchedule", "table1_schedule", "CAMPAIGN_ORIGIN"]

#: Real-time origin of the capture campaign: June 6 2024, 00:00:00.
CAMPAIGN_ORIGIN = datetime(2024, 6, 6, 0, 0, 0)


@dataclass(frozen=True)
class Episode:
    """One attack episode in real campaign time."""

    attack_type: AttackType
    start: datetime
    end: datetime

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"episode ends before it starts: {self}")

    @property
    def duration_s(self) -> float:
        return (self.end - self.start).total_seconds()


def table1_schedule() -> List[Episode]:
    """The eleven simulated attack flows of Table I."""
    d10 = lambda h, m, s: datetime(2024, 6, 10, h, m, s)  # noqa: E731
    d11 = lambda h, m, s: datetime(2024, 6, 11, h, m, s)  # noqa: E731
    A = AttackType
    return [
        Episode(A.SYN_SCAN, d10(13, 24, 2), d10(13, 57, 3)),
        Episode(A.SYN_SCAN, d10(16, 30, 51), d10(16, 35, 20)),
        Episode(A.UDP_SCAN, d10(16, 36, 20), d10(16, 53, 0)),
        Episode(A.UDP_SCAN, d10(16, 56, 45), d10(16, 59, 59)),  # "16:59:99" in the paper
        Episode(A.SYN_FLOOD, d10(20, 48, 1), d10(20, 49, 1)),
        Episode(A.SYN_FLOOD, d10(20, 52, 11), d10(20, 54, 12)),
        Episode(A.SYN_FLOOD, d11(20, 13, 31), d11(20, 15, 31)),
        Episode(A.SYN_FLOOD, d11(20, 16, 41), d11(20, 17, 1)),
        Episode(A.SYN_FLOOD, d11(20, 17, 17), d11(20, 17, 37)),
        Episode(A.SLOWLORIS, d11(20, 27, 37), d11(20, 28, 37)),
        Episode(A.SLOWLORIS, d11(20, 29, 12), d11(20, 31, 12)),
    ]


class CampaignSchedule:
    """Table I mapped onto the simulation timeline.

    Real campaign time is compressed by ``time_scale`` (sim seconds per
    real second).  With the default 1/600, ten real minutes become one
    simulated second, so the full six-day campaign spans ~864 simulated
    seconds — enough to keep packet counts tractable while preserving
    every episode's relative timing and duty cycle.

    Parameters
    ----------
    episodes : sequence of Episode, optional
        Defaults to :func:`table1_schedule`.
    origin : datetime
        Real time mapped to simulation t=0.
    time_scale : float
        Simulated seconds per real second (< 1 compresses).
    """

    def __init__(
        self,
        episodes: Sequence[Episode] | None = None,
        origin: datetime = CAMPAIGN_ORIGIN,
        time_scale: float = 1.0 / 600.0,
    ) -> None:
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive: {time_scale}")
        self.episodes = list(episodes) if episodes is not None else table1_schedule()
        self.origin = origin
        self.time_scale = float(time_scale)

    # ------------------------------------------------------------------
    # time mapping
    # ------------------------------------------------------------------
    def to_sim_ns(self, when: datetime) -> int:
        """Map a real campaign instant to simulation nanoseconds."""
        real_s = (when - self.origin).total_seconds()
        return int(round(real_s * self.time_scale * 1e9))

    def sim_windows(self) -> List[tuple]:
        """Episode windows as ``(attack_type, start_ns, end_ns)`` tuples."""
        return [
            (ep.attack_type, self.to_sim_ns(ep.start), self.to_sim_ns(ep.end))
            for ep in self.episodes
        ]

    def campaign_end_ns(self, end: datetime | None = None) -> int:
        """Simulation time of the campaign end (default: last episode +1 min)."""
        if end is None:
            last = max(ep.end for ep in self.episodes)
            real_s = (last - self.origin).total_seconds() + 60.0
            return int(round(real_s * self.time_scale * 1e9))
        return self.to_sim_ns(end)

    # ------------------------------------------------------------------
    # labeling
    # ------------------------------------------------------------------
    def label_timestamps(self, ts_ns: np.ndarray) -> np.ndarray:
        """Attack-type label for each simulation timestamp.

        Returns an array of :class:`AttackType` values (uint8); 0 where a
        timestamp falls outside every episode.  Used to score detector
        output against ground truth, vectorized over the full capture.
        """
        ts_ns = np.asarray(ts_ns, dtype=np.int64)
        out = np.zeros(ts_ns.shape, dtype=np.uint8)
        for attack_type, start, end in self.sim_windows():
            mask = (ts_ns >= start) & (ts_ns < end)
            out[mask] = int(attack_type)
        return out

    def episodes_of_type(self, attack_type: AttackType) -> List[Episode]:
        return [ep for ep in self.episodes if ep.attack_type == attack_type]

    def __len__(self) -> int:
        return len(self.episodes)
