"""Traffic generation, attack tooling, schedules, traces, and replay.

Synthesizes the workload side of the reproduction: benign web-server
traffic (:mod:`~repro.traffic.benign`), the four attack tools of Table I
(:mod:`~repro.traffic.attacks`), the episode schedule
(:mod:`~repro.traffic.schedule`), pcap-like traces
(:mod:`~repro.traffic.trace`), and tcpreplay-style injection
(:mod:`~repro.traffic.replay`).
"""

from .amplification import dns_amplification, ntp_amplification
from .attacks import slowloris, syn_flood, syn_scan, udp_scan
from .benign import BenignConfig, generate_benign
from .flows import AddressPool, TraceBuilder, packet_block
from .pcap import read_pcap, write_pcap
from .replay import Replayer, replay_counts
from .schedule import CAMPAIGN_ORIGIN, CampaignSchedule, Episode, table1_schedule
from .trace import PACKET_DTYPE, AttackType, Trace, merge_traces

__all__ = [
    "syn_scan",
    "dns_amplification",
    "ntp_amplification",
    "udp_scan",
    "syn_flood",
    "slowloris",
    "BenignConfig",
    "generate_benign",
    "AddressPool",
    "TraceBuilder",
    "packet_block",
    "read_pcap",
    "write_pcap",
    "Replayer",
    "replay_counts",
    "CampaignSchedule",
    "Episode",
    "table1_schedule",
    "CAMPAIGN_ORIGIN",
    "AttackType",
    "Trace",
    "PACKET_DTYPE",
    "merge_traces",
]
