"""Reflection/amplification attack generators (paper §II-B).

The paper's background section names DNS and NTP amplification among the
prevalent DDoS classes (alongside the SYN flood it demonstrates).  These
generators synthesize the *reflected* leg as the victim's network sees
it: the attacker spoofs the victim's address toward open reflectors, so
what arrives at the monitored edge is a torrent of large UDP responses
from many reflector addresses, source port 53 (DNS) or 123 (NTP).

Signature properties (and how they differ from Table I's attacks):

* large packets — responses are amplified (DNS ANY answers fragment into
  MTU-size pieces; NTP ``monlist`` replies are ~468 B × up to 100
  packets per request), unlike a SYN flood's 40-byte probes;
* many source addresses (the reflector population), like a spoofed
  flood — but well-formed UDP from service ports, not TCP SYNs;
* essentially unidirectional: the victim never asked, and mostly drops.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import as_generator
from repro.dataplane.packet import Protocol

from .attacks import _jittered_times
from .flows import TraceBuilder, packet_block
from .trace import AttackType, Trace

__all__ = ["dns_amplification", "ntp_amplification"]


def _reflection(
    victim_ip: int,
    service_port: int,
    attack_type: AttackType,
    start_ns: int,
    end_ns: int,
    rate_pps: float,
    n_reflectors: int,
    reflector_base_ip: int,
    sizes: np.ndarray,
    burst_len,
    seed,
) -> Trace:
    rng = as_generator(seed)
    if n_reflectors < 1:
        raise ValueError(f"n_reflectors must be >= 1: {n_reflectors}")
    # each trigger elicits a burst of response packets from one reflector
    triggers = _jittered_times(start_ns, end_ns, rate_pps, rng)
    n = triggers.shape[0]
    if n == 0:
        return Trace.empty()
    reflectors = (
        reflector_base_ip + rng.integers(0, n_reflectors, size=n)
    ).astype(np.uint32)
    victim_ports = rng.integers(1024, 65536, size=n).astype(np.uint16)

    builder = TraceBuilder()
    bursts = burst_len(rng, n)
    for i in range(n):
        k = int(bursts[i])
        gaps = rng.integers(3_000, 30_000, size=k)
        t = int(triggers[i]) + np.cumsum(gaps)
        pkt_sizes = rng.choice(sizes, size=k)
        builder.add(
            packet_block(
                t, int(reflectors[i]), victim_ip,
                service_port, int(victim_ports[i]),
                Protocol.UDP, 0, pkt_sizes,
                label=1, attack_type=attack_type,
            )
        )
    return builder.build()


def dns_amplification(
    victim_ip: int,
    start_ns: int,
    end_ns: int,
    rate_pps: float = 2000.0,
    n_reflectors: int = 500,
    reflector_base_ip: int = 0x08080000,  # resolver-ish space
    seed=None,
) -> Trace:
    """Reflected DNS ``ANY``-style responses toward the victim.

    ``rate_pps`` is the *trigger* rate; each trigger yields a 2-4 packet
    fragmented response of MTU-class sizes (a ~50× byte amplification of
    the attacker's spoofed ~70-byte query).
    """
    return _reflection(
        victim_ip, 53, AttackType.DNS_AMPLIFICATION, start_ns, end_ns,
        rate_pps, n_reflectors, reflector_base_ip,
        sizes=np.array([1500, 1500, 1200, 900]),
        burst_len=lambda rng, n: rng.integers(2, 5, size=n),
        seed=seed,
    )


def ntp_amplification(
    victim_ip: int,
    start_ns: int,
    end_ns: int,
    rate_pps: float = 500.0,
    n_reflectors: int = 100,
    reflector_base_ip: int = 0x0A7B0000,
    seed=None,
) -> Trace:
    """Reflected NTP ``monlist`` responses toward the victim.

    Each trigger yields a burst of up to ~100 packets of 468 bytes (the
    classic 556× amplification); we cap bursts for tractability while
    keeping the fixed-size many-packet signature.
    """
    return _reflection(
        victim_ip, 123, AttackType.NTP_AMPLIFICATION, start_ns, end_ns,
        rate_pps, n_reflectors, reflector_base_ip,
        sizes=np.array([468]),
        burst_len=lambda rng, n: rng.integers(10, 40, size=n),
        seed=seed,
    )
