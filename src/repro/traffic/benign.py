"""Benign web-server traffic model.

Synthesizes the "normal flows" side of the paper's capture: traffic
interacting with a production web server.  Sessions arrive as a (diurnally
modulated) Poisson process; each session performs a TCP handshake, a
geometric number of HTTP-like request/response exchanges with
heavy-tailed response sizes, and a FIN teardown.  A small share of
benign UDP (DNS-style) query/response flows is mixed in so the protocol
field alone cannot separate benign from attack traffic.

What matters for the reproduction is the *feature geometry*: benign flows
are bidirectional, medium-rate, with handshake flag sequences, payload-
bearing packets of varied size, and inter-arrival times set by RTT and
think time — in contrast to the attack generators' floods of tiny SYNs,
one-packet scan probes, and trickling SlowLoris keepalives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.rng import as_generator
from repro.dataplane.packet import Protocol, TCPFlags

from .flows import AddressPool, TraceBuilder, packet_block
from .trace import AttackType, Trace

__all__ = ["BenignConfig", "generate_benign"]

_MTU = 1500
# Real client stacks: 66-byte SYN/SYNACK (MSS, SACK, wscale, timestamp
# options), 54-byte pure ACKs — distinctly larger than the 40-byte
# crafted probes attack tools emit.
_ACK_LEN = 54
_SYN_LEN = 66


@dataclass
class BenignConfig:
    """Knobs of the benign web workload.

    Attributes
    ----------
    sessions_per_s : float
        Mean TCP session arrival rate (before diurnal modulation).
    diurnal_amplitude : float
        Relative amplitude of the sinusoidal day/night rate swing
        (0 disables modulation).
    diurnal_period_ns : int
        One simulated "day" (the real 24 h times the campaign scale).
    mean_requests : float
        Geometric mean of request/response exchanges per session.
    response_pkts_tail : float
        Pareto tail exponent of response length in packets (smaller =
        heavier tail).
    mean_think_ns : int
        Mean client think time between exchanges.
    rtt_ns : int
        Mean round-trip time between client and server.
    udp_session_fraction : float
        Fraction of sessions that are UDP query/response (DNS-style)
        instead of TCP web sessions.
    asymmetric_fraction : float
        Fraction of TCP sessions for which only the client→server leg
        crosses the monitored path.  Long-haul R&E routing (AmLight's
        reality) is frequently asymmetric, so a capture point sees some
        flows as handshake + request + bare ACK streams — small packets
        at line-rate timing.  This keeps packet size from being a
        trivially clean benign/attack separator, exactly as in
        production data.
    """

    sessions_per_s: float = 10.0
    diurnal_amplitude: float = 0.3
    diurnal_period_ns: int = int(86400e9 / 600)  # one real day at 1/600 scale
    mean_requests: float = 3.0
    response_pkts_tail: float = 1.3
    max_response_pkts: int = 40
    mean_think_ns: int = 50_000_000
    rtt_ns: int = 2_000_000
    udp_session_fraction: float = 0.05
    asymmetric_fraction: float = 0.08


def _session_arrivals(start_ns, end_ns, cfg, rng) -> np.ndarray:
    """Non-homogeneous Poisson arrivals via thinning."""
    span = end_ns - start_ns
    peak_rate = cfg.sessions_per_s * (1.0 + cfg.diurnal_amplitude)
    expected = peak_rate * span / 1e9
    n_candidates = rng.poisson(expected)
    if n_candidates == 0:
        return np.empty(0, dtype=np.int64)
    t = np.sort(rng.integers(start_ns, end_ns, size=n_candidates))
    if cfg.diurnal_amplitude == 0:
        keep_p = np.full(n_candidates, 1.0 / (1.0 + cfg.diurnal_amplitude))
    else:
        phase = 2 * np.pi * (t / cfg.diurnal_period_ns)
        rate = 1.0 + cfg.diurnal_amplitude * np.sin(phase)
        keep_p = rate / (1.0 + cfg.diurnal_amplitude)
    keep = rng.random(n_candidates) < keep_p
    return t[keep].astype(np.int64)


def _tcp_session(
    t0: int,
    client_ip: int,
    client_port: int,
    server_ip: int,
    server_port: int,
    cfg: BenignConfig,
    rng: np.random.Generator,
    builder: TraceBuilder,
    asymmetric: bool = False,
) -> None:
    """Emit one TCP web session into the builder.

    With ``asymmetric=True`` only the client→server direction is
    emitted (the reverse leg is routed around the capture point), so
    the monitored flow degenerates to handshake + requests + a stream
    of bare ACKs pacing the unseen response data.
    """
    rtt = max(100, int(rng.normal(cfg.rtt_ns, cfg.rtt_ns * 0.15)))
    half = rtt // 2

    fwd_t, fwd_flags, fwd_len = [], [], []
    rev_t, rev_flags, rev_len = [], [], []

    # --- handshake ---------------------------------------------------
    # Option sizes vary by OS/stack (MSS only → 60 B, through full
    # MSS+SACK+wscale+timestamps → 78 B); pure ACKs run 54-66 B
    # depending on the timestamp option.
    t = t0
    syn_len = int(rng.integers(60, 79))
    synack_len = int(rng.integers(60, 75))
    ack_len = int(rng.choice((54, 66)))
    fwd_t.append(t); fwd_flags.append(int(TCPFlags.SYN)); fwd_len.append(syn_len)
    rev_t.append(t + half); rev_flags.append(int(TCPFlags.SYNACK)); rev_len.append(synack_len)
    t = t + rtt

    # --- request / response exchanges ---------------------------------
    # Real HTTP clients piggyback the first GET on the handshake ACK
    # (or send it back-to-back in the same RTT), so a benign flow never
    # idles in a "tiny packets only" state past the handshake — unlike
    # SlowLoris, which by design never completes a request.
    n_req = 1 + rng.geometric(1.0 / cfg.mean_requests)
    for r in range(n_req):
        if r > 0:
            t += max(0, int(rng.exponential(cfg.mean_think_ns)))
        # A real GET with Host/UA/Accept/Cookie headers runs 350-1100 B.
        req_len = int(rng.integers(350, 1100))
        fwd_t.append(t); fwd_flags.append(int(TCPFlags.PSHACK)); fwd_len.append(req_len)
        # response: heavy-tailed number of MTU packets
        k = 1 + int(rng.pareto(cfg.response_pkts_tail))
        k = min(k, cfg.max_response_pkts)
        # server streams back-to-back with small serialization gaps
        gaps = rng.integers(5_000, 40_000, size=k)
        resp_times = t + half + np.cumsum(gaps)
        sizes = np.full(k, _MTU)
        sizes[-1] = int(rng.integers(200, _MTU))
        rev_t.extend(resp_times.tolist())
        rev_flags.extend([int(TCPFlags.PSHACK)] * k)
        rev_len.extend(sizes.tolist())
        # client ACKs every second response segment
        ack_times = resp_times[1::2] + half
        fwd_t.extend(ack_times.tolist())
        fwd_flags.extend([int(TCPFlags.ACK)] * len(ack_times))
        fwd_len.extend([ack_len] * len(ack_times))
        t = int(resp_times[-1]) + half

    # --- teardown ------------------------------------------------------
    t += max(0, int(rng.exponential(cfg.mean_think_ns // 2)))
    fwd_t.append(t); fwd_flags.append(int(TCPFlags.FIN | TCPFlags.ACK)); fwd_len.append(ack_len)
    rev_t.append(t + half); rev_flags.append(int(TCPFlags.FIN | TCPFlags.ACK)); rev_len.append(ack_len)
    fwd_t.append(t + rtt); fwd_flags.append(int(TCPFlags.ACK)); fwd_len.append(ack_len)

    builder.add(
        packet_block(
            np.array(fwd_t), client_ip, server_ip, client_port, server_port,
            Protocol.TCP, np.array(fwd_flags), np.array(fwd_len),
        )
    )
    if not asymmetric:
        builder.add(
            packet_block(
                np.array(rev_t), server_ip, client_ip, server_port, client_port,
                Protocol.TCP, np.array(rev_flags), np.array(rev_len),
            )
        )


def _udp_session(
    t0, client_ip, client_port, server_ip, cfg, rng, builder
) -> None:
    """DNS-style UDP exchange: 1-3 queries, each answered once."""
    n = int(rng.integers(1, 4))
    q_times = t0 + np.cumsum(rng.integers(0, cfg.mean_think_ns, size=n))
    q_len = rng.integers(60, 120, size=n)
    builder.add(
        packet_block(q_times, client_ip, server_ip, client_port, 53,
                     Protocol.UDP, 0, q_len)
    )
    a_times = q_times + rng.integers(cfg.rtt_ns // 2, cfg.rtt_ns, size=n)
    a_len = rng.integers(100, 512, size=n)
    builder.add(
        packet_block(a_times, server_ip, client_ip, 53, client_port,
                     Protocol.UDP, 0, a_len)
    )


def generate_benign(
    server_ip: int,
    server_port: int,
    start_ns: int,
    end_ns: int,
    config: BenignConfig | None = None,
    pool: AddressPool | None = None,
    seed=None,
) -> Trace:
    """Generate the benign capture for ``[start_ns, end_ns)``.

    Parameters
    ----------
    server_ip, server_port : int
        The monitored web server endpoint.
    start_ns, end_ns : int
        Simulation window.
    config : BenignConfig, optional
    pool : AddressPool, optional
        Client address pool; a default /16 at 172.16.0.0 is used if
        omitted.
    seed : int | numpy.random.Generator | None

    Returns
    -------
    Trace
        Time-sorted packets, all labeled benign.
    """
    if end_ns <= start_ns:
        raise ValueError("empty generation window")
    cfg = config if config is not None else BenignConfig()
    rng = as_generator(seed)
    if pool is None:
        pool = AddressPool(base_ip=0xAC100000, seed=rng)  # 172.16.0.0/16

    arrivals = _session_arrivals(start_ns, end_ns, cfg, rng)
    n = arrivals.shape[0]
    client_ips = pool.addresses(n)
    client_ports = pool.ephemeral_ports(n)
    is_udp = rng.random(n) < cfg.udp_session_fraction
    is_asym = rng.random(n) < cfg.asymmetric_fraction

    builder = TraceBuilder()
    for i in range(n):
        if is_udp[i]:
            _udp_session(
                int(arrivals[i]), int(client_ips[i]), int(client_ports[i]),
                server_ip, cfg, rng, builder,
            )
        else:
            _tcp_session(
                int(arrivals[i]), int(client_ips[i]), int(client_ports[i]),
                server_ip, server_port, cfg, rng, builder,
                asymmetric=bool(is_asym[i]),
            )
    return builder.build()
