"""Real pcap serialization for traces.

The paper's testbed step replays pcaps with ``tcpreplay``.  Our traces
are structured arrays, but a downstream user with real hardware needs
actual capture files — so this module writes classic libpcap format
(magic ``0xa1b2c3d4``, microsecond timestamps, LINKTYPE_ETHERNET) with
fully formed Ethernet/IPv4/TCP|UDP|ICMP headers and correct IPv4
checksums, and reads such files back into trace records.

Ground-truth labels obviously cannot ride inside a pcap; `write_pcap`
can emit a sidecar ``.labels.npz`` so a round trip loses nothing.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from repro.dataplane.packet import Protocol

from .trace import PACKET_DTYPE, Trace

__all__ = ["write_pcap", "read_pcap", "ipv4_checksum"]

_PCAP_MAGIC = 0xA1B2C3D4
_LINKTYPE_ETHERNET = 1
_GLOBAL_HDR = struct.Struct("<IHHiIII")
_REC_HDR = struct.Struct("<IIII")
_ETH_HDR = struct.Struct("!6s6sH")
_IP_HDR = struct.Struct("!BBHHHBBH4s4s")

_SRC_MAC = bytes.fromhex("020000000001")
_DST_MAC = bytes.fromhex("020000000002")


def ipv4_checksum(header: bytes) -> int:
    """RFC 1071 one's-complement checksum over an IPv4 header."""
    if len(header) % 2:
        header += b"\x00"
    total = sum(struct.unpack(f"!{len(header) // 2}H", header))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def _l4_bytes(row: np.void, payload_len: int) -> bytes:
    proto = int(row["protocol"])
    if proto == int(Protocol.TCP):
        # src, dst, seq, ack, offset/flags, window, checksum, urgent
        hdr = struct.pack(
            "!HHIIBBHHH",
            int(row["src_port"]), int(row["dst_port"]),
            0, 0, (5 << 4), int(row["tcp_flags"]), 65535, 0, 0,
        )
        return hdr + b"\x00" * max(payload_len - len(hdr), 0)
    if proto == int(Protocol.UDP):
        length = max(payload_len, 8)
        hdr = struct.pack("!HHHH", int(row["src_port"]), int(row["dst_port"]),
                          length, 0)
        return hdr + b"\x00" * (length - 8)
    # ICMP and anything else: type/code/checksum + padding
    hdr = struct.pack("!BBHI", 3, 3, 0, 0)
    return hdr + b"\x00" * max(payload_len - len(hdr), 0)


def _frame_bytes(row: np.void) -> bytes:
    total_len = max(int(row["length"]), 28)
    ip_payload = total_len - 20
    l4 = _l4_bytes(row, ip_payload)
    ip_total = 20 + len(l4)
    ip_wo_ck = _IP_HDR.pack(
        0x45, 0, ip_total, 0, 0, 64, int(row["protocol"]), 0,
        int(row["src_ip"]).to_bytes(4, "big"),
        int(row["dst_ip"]).to_bytes(4, "big"),
    )
    ck = ipv4_checksum(ip_wo_ck)
    ip = _IP_HDR.pack(
        0x45, 0, ip_total, 0, 0, 64, int(row["protocol"]), ck,
        int(row["src_ip"]).to_bytes(4, "big"),
        int(row["dst_ip"]).to_bytes(4, "big"),
    )
    eth = _ETH_HDR.pack(_DST_MAC, _SRC_MAC, 0x0800)
    return eth + ip + l4


def write_pcap(
    trace: Trace, path: str | Path, with_labels: bool = True
) -> Path:
    """Serialize a trace to a classic pcap file.

    Parameters
    ----------
    trace : Trace
    path : destination ``.pcap`` path.
    with_labels : bool
        Also write ``<path>.labels.npz`` holding the ground-truth
        ``label`` / ``attack_type`` columns (order-aligned with the
        pcap's packets).
    """
    path = Path(path)
    rec = trace.records
    with open(path, "wb") as fh:
        fh.write(_GLOBAL_HDR.pack(_PCAP_MAGIC, 2, 4, 0, 0, 65535,
                                  _LINKTYPE_ETHERNET))
        for row in rec:
            frame = _frame_bytes(row)
            ts = int(row["ts"])
            fh.write(_REC_HDR.pack(ts // 10**9, (ts % 10**9) // 1000,
                                   len(frame), len(frame)))
            fh.write(frame)
    if with_labels:
        np.savez_compressed(
            path.with_suffix(path.suffix + ".labels.npz"),
            label=rec["label"], attack_type=rec["attack_type"],
        )
    return path


def read_pcap(path: str | Path, labels: bool = True) -> Trace:
    """Parse a pcap written by :func:`write_pcap` back into a trace.

    Only the fields the trace schema carries are recovered (ports,
    protocol, flags, IP total length, microsecond-truncated timestamps).
    If the sidecar labels file exists and ``labels`` is true, ground
    truth is restored too.
    """
    path = Path(path)
    data = path.read_bytes()
    magic, *_rest = _GLOBAL_HDR.unpack_from(data, 0)
    if magic != _PCAP_MAGIC:
        raise ValueError(f"not a (little-endian classic) pcap: magic={magic:#x}")
    rows = []
    off = _GLOBAL_HDR.size
    while off < len(data):
        sec, usec, incl, _orig = _REC_HDR.unpack_from(data, off)
        off += _REC_HDR.size
        frame = data[off : off + incl]
        off += incl
        if len(frame) < 14 + 20:
            raise ValueError("truncated frame")
        ethertype = struct.unpack_from("!H", frame, 12)[0]
        if ethertype != 0x0800:
            raise ValueError(f"unexpected ethertype {ethertype:#x}")
        (vihl, _tos, ip_total, _ident, _frag, _ttl, proto, _ck,
         src, dst) = _IP_HDR.unpack_from(frame, 14)
        if vihl != 0x45:
            raise ValueError("only IPv4 without options is supported")
        l4 = frame[14 + 20 :]
        sport = dport = 0
        flags = 0
        if proto == int(Protocol.TCP) and len(l4) >= 14:
            sport, dport = struct.unpack_from("!HH", l4, 0)
            flags = l4[13]
        elif proto == int(Protocol.UDP) and len(l4) >= 4:
            sport, dport = struct.unpack_from("!HH", l4, 0)
        rows.append((
            sec * 10**9 + usec * 1000,
            int.from_bytes(src, "big"), int.from_bytes(dst, "big"),
            sport, dport, proto, flags, ip_total, 0, 0,
        ))
    rec = np.zeros(len(rows), dtype=PACKET_DTYPE)
    for i, row in enumerate(rows):
        rec[i] = row
    if labels:
        sidecar = path.with_suffix(path.suffix + ".labels.npz")
        if sidecar.exists():
            with np.load(sidecar) as blob:
                rec["label"] = blob["label"]
                rec["attack_type"] = blob["attack_type"]
    return Trace(rec, sort=False)
