"""Packet traces.

A :class:`Trace` is a time-sorted structured array of packets — the
library's equivalent of a pcap.  Generators produce traces, the replayer
plays them into a topology (the paper's ``tcpreplay`` step), and the
dataset builder merges benign and attack traces into labeled captures.

Ground-truth labels ride along with each packet: ``label`` (0 benign /
1 attack) and ``attack_type`` (:class:`AttackType`).  Real captures don't
have these bits, of course — they exist so experiments can score
predictions; nothing in the detection path reads them.
"""

from __future__ import annotations

from enum import IntEnum
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

__all__ = ["AttackType", "PACKET_DTYPE", "Trace", "merge_traces"]


class AttackType(IntEnum):
    """Attack taxonomy: Table I's four types (0 reserved for benign),
    plus the amplification attacks the paper's §II-B names as the other
    prevalent DDoS class (extension generators)."""

    BENIGN = 0
    SYN_SCAN = 1
    UDP_SCAN = 2
    SYN_FLOOD = 3
    SLOWLORIS = 4
    DNS_AMPLIFICATION = 5
    NTP_AMPLIFICATION = 6

    @property
    def display(self) -> str:
        return {
            AttackType.BENIGN: "Benign",
            AttackType.SYN_SCAN: "SYN Scan",
            AttackType.UDP_SCAN: "UDP Scan",
            AttackType.SYN_FLOOD: "SYN Flood",
            AttackType.SLOWLORIS: "SlowLoris",
            AttackType.DNS_AMPLIFICATION: "DNS Amplification",
            AttackType.NTP_AMPLIFICATION: "NTP Amplification",
        }[self]


#: One trace row ≙ one packet on the wire, plus ground-truth labeling.
PACKET_DTYPE = np.dtype(
    [
        ("ts", np.int64),  # send time (ns, simulation origin)
        ("src_ip", np.uint32),
        ("dst_ip", np.uint32),
        ("src_port", np.uint16),
        ("dst_port", np.uint16),
        ("protocol", np.uint8),
        ("tcp_flags", np.uint8),
        ("length", np.uint32),
        ("label", np.uint8),  # ground truth: 0 benign, 1 attack
        ("attack_type", np.uint8),  # AttackType value
    ]
)


class Trace:
    """Immutable-by-convention wrapper around a packet record array.

    Rows are kept sorted by timestamp (stable sort, so the relative order
    of simultaneous packets from one generator is preserved).
    """

    def __init__(self, records: np.ndarray, sort: bool = True) -> None:
        records = np.asarray(records, dtype=PACKET_DTYPE)
        if sort and records.size and not _is_sorted(records["ts"]):
            records = records[np.argsort(records["ts"], kind="stable")]
        self.records = records

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "Trace":
        return cls(np.empty(0, dtype=PACKET_DTYPE), sort=False)

    @classmethod
    def from_columns(cls, **cols) -> "Trace":
        """Build a trace from same-length column arrays.

        Missing label columns default to benign; missing ``tcp_flags``
        defaults to 0.
        """
        n = len(cols["ts"])
        rec = np.zeros(n, dtype=PACKET_DTYPE)
        for name, values in cols.items():
            if name not in PACKET_DTYPE.names:
                raise KeyError(f"unknown trace column: {name}")
            rec[name] = values
        return cls(rec)

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.records.shape[0])

    def __getitem__(self, key) -> "Trace":
        return Trace(self.records[key], sort=False)

    @property
    def ts(self) -> np.ndarray:
        return self.records["ts"]

    @property
    def duration_ns(self) -> int:
        if len(self) == 0:
            return 0
        return int(self.records["ts"][-1] - self.records["ts"][0])

    def time_slice(self, start_ns: int, end_ns: int) -> "Trace":
        """Packets with ``start_ns <= ts < end_ns`` (records are sorted)."""
        lo = np.searchsorted(self.records["ts"], start_ns, side="left")
        hi = np.searchsorted(self.records["ts"], end_ns, side="left")
        return Trace(self.records[lo:hi], sort=False)

    def attack_fraction(self) -> float:
        """Share of packets labeled as attack traffic."""
        if len(self) == 0:
            return 0.0
        return float(self.records["label"].mean())

    def counts_by_type(self) -> dict:
        """Packet counts per :class:`AttackType`."""
        out = {}
        types, counts = np.unique(self.records["attack_type"], return_counts=True)
        for t, c in zip(types, counts):
            out[AttackType(int(t))] = int(c)
        return out

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Serialize to a compressed ``.npz`` file."""
        np.savez_compressed(path, records=self.records)

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        with np.load(path) as data:
            return cls(data["records"], sort=False)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Trace({len(self)} pkts, {self.duration_ns / 1e9:.3f} s)"


def _is_sorted(a: np.ndarray) -> bool:
    return bool(np.all(a[1:] >= a[:-1])) if a.size > 1 else True


def merge_traces(traces: Iterable[Trace]) -> Trace:
    """Merge several traces into one time-sorted trace."""
    parts = [t.records for t in traces if len(t)]
    if not parts:
        return Trace.empty()
    merged = np.concatenate(parts)
    return Trace(merged)
