"""Trace replay into a simulated topology (the paper's ``tcpreplay`` step).

The paper replays pcaps into the physical testbed with
``tcpreplay -i <interface> -p <number of packets> <pcap>``.
:class:`Replayer` is the equivalent here: it schedules every trace row as
a packet injection at the trace timestamp, entering the topology at the
switch/port appropriate for its direction.

Direction is decided per packet by a classifier callable; the default
sends packets *to* the monitored server in at the client-side edge and
everything else in at the server-side edge, matching how a capture taken
on a subnet boundary sees both directions.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.dataplane.packet import Packet
from repro.dataplane.switch import Switch
from repro.dataplane.topology import Topology

from .trace import Trace

__all__ = ["Replayer", "replay_counts"]

IngressPoint = Tuple[Switch, int]


class Replayer:
    """Schedules trace rows into a topology's event queue.

    Parameters
    ----------
    topology : Topology
        Target network; packets are scheduled on its event queue.
    ingress_map : dict[str, (Switch, int)]
        Named injection points, e.g. ``{"fwd": (sw1, 1), "rev": (sw3, 2)}``.
    classify : callable(row) -> str, optional
        Maps each trace row to an ingress-map key.  The default requires
        an ingress map with a single entry and sends everything there.
    loop : int
        Number of times to replay the trace (tcpreplay's ``--loop``).
    speedup : float
        Time compression applied to trace timestamps (>1 replays faster,
        tcpreplay's ``--multiplier``).
    """

    def __init__(
        self,
        topology: Topology,
        ingress_map: Dict[str, IngressPoint],
        classify: Optional[Callable[[np.void], str]] = None,
        speedup: float = 1.0,
    ) -> None:
        if not ingress_map:
            raise ValueError("ingress_map must contain at least one entry")
        if speedup <= 0:
            raise ValueError(f"speedup must be positive: {speedup}")
        if classify is None and len(ingress_map) > 1:
            raise ValueError("classify is required with multiple ingress points")
        self.topology = topology
        self.ingress_map = dict(ingress_map)
        self.classify = classify
        self.speedup = float(speedup)
        self.scheduled = 0

    def schedule(
        self,
        trace: Trace,
        start_at_ns: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> int:
        """Schedule (up to ``limit``) trace packets for injection.

        By default trace timestamps are preserved *absolutely* (so a
        capture replayed into a fresh simulation lands at its scheduled
        campaign times); pass ``start_at_ns`` to rebase the first packet
        there instead.  ``speedup`` compresses gaps relative to the
        first packet either way.  Returns the number of packets
        scheduled; call ``topology.run()`` afterwards to execute.
        """
        rec = trace.records
        if limit is not None:
            rec = rec[:limit]
        if rec.shape[0] == 0:
            return 0
        now = self.topology.clock.now
        t0 = int(rec["ts"][0])
        base = t0 if start_at_ns is None else int(start_at_ns)
        base = max(base, now)
        default_key = next(iter(self.ingress_map)) if self.classify is None else None

        events = self.topology.events
        for row in rec:
            key = default_key if default_key is not None else self.classify(row)
            switch, port = self.ingress_map[key]
            pkt = Packet(
                src_ip=int(row["src_ip"]),
                dst_ip=int(row["dst_ip"]),
                src_port=int(row["src_port"]),
                dst_port=int(row["dst_port"]),
                protocol=int(row["protocol"]),
                length=int(row["length"]),
                tcp_flags=int(row["tcp_flags"]),
            )
            t = base + int((int(row["ts"]) - t0) / self.speedup)
            pkt.ts_send = t
            events.schedule(t, lambda p, _sw=switch, _pt=port: _sw.receive(p, _pt), pkt)
            self.scheduled += 1
        return int(rec.shape[0])

    def replay(self, trace: Trace, **kwargs) -> int:
        """Schedule and immediately run to completion; returns packet count."""
        n = self.schedule(trace, **kwargs)
        self.topology.run()
        return n


def replay_counts(trace: Trace) -> dict:
    """Per-attack-type packet counts — the ``-p`` bookkeeping of Table VI."""
    return {t.display: c for t, c in trace.counts_by_type().items()}
