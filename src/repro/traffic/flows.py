"""Flow synthesis primitives shared by the traffic generators.

Generators build packet blocks column-wise with NumPy (a scalar broadcast
per constant field, a vector per varying field) and collect them in a
:class:`TraceBuilder`; only one concatenate + one sort happens per trace.
This keeps generation vectorized even though the traffic *content* is
flow-structured.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.common.rng import as_generator
from repro.dataplane.packet import Protocol, TCPFlags

from .trace import PACKET_DTYPE, AttackType, Trace

__all__ = ["packet_block", "TraceBuilder", "AddressPool", "EPHEMERAL_LO", "EPHEMERAL_HI"]

EPHEMERAL_LO = 32768
EPHEMERAL_HI = 60999  # Linux default ephemeral range


def packet_block(
    ts,
    src_ip,
    dst_ip,
    src_port,
    dst_port,
    protocol,
    tcp_flags=0,
    length=64,
    label=0,
    attack_type=AttackType.BENIGN,
) -> np.ndarray:
    """Build a :data:`PACKET_DTYPE` block; scalars broadcast over ``ts``.

    ``ts`` fixes the block size; every other argument may be a matching
    vector or a scalar.
    """
    ts = np.asarray(ts, dtype=np.int64)
    n = ts.shape[0]
    block = np.zeros(n, dtype=PACKET_DTYPE)
    block["ts"] = ts
    block["src_ip"] = src_ip
    block["dst_ip"] = dst_ip
    block["src_port"] = src_port
    block["dst_port"] = dst_port
    block["protocol"] = int(protocol)
    block["tcp_flags"] = tcp_flags
    block["length"] = length
    block["label"] = label
    block["attack_type"] = int(attack_type)
    return block


class TraceBuilder:
    """Accumulates packet blocks; concatenates and sorts once at the end."""

    def __init__(self) -> None:
        self._blocks: List[np.ndarray] = []

    def add(self, block: np.ndarray) -> None:
        if block.dtype != PACKET_DTYPE:
            raise TypeError("block must have PACKET_DTYPE")
        if block.size:
            self._blocks.append(block)

    def __len__(self) -> int:
        return sum(b.shape[0] for b in self._blocks)

    def build(self) -> Trace:
        if not self._blocks:
            return Trace.empty()
        return Trace(np.concatenate(self._blocks))


class AddressPool:
    """Deterministic client address/port allocation for generators.

    Draws client IPs from a /16 and ephemeral ports from the Linux
    default range.  Sharing one pool between benign and attack generators
    guarantees no accidental address collisions between labels.
    """

    def __init__(self, base_ip: int, size: int = 65534, seed=None) -> None:
        if size < 1:
            raise ValueError(f"pool size must be >= 1: {size}")
        self.base_ip = int(base_ip)
        self.size = int(size)
        self._rng = as_generator(seed)

    def addresses(self, n: int) -> np.ndarray:
        """Draw ``n`` client addresses (with replacement) from the pool."""
        offsets = self._rng.integers(1, self.size + 1, size=n, dtype=np.int64)
        return (self.base_ip + offsets).astype(np.uint32)

    def ephemeral_ports(self, n: int) -> np.ndarray:
        """Draw ``n`` ephemeral source ports."""
        return self._rng.integers(
            EPHEMERAL_LO, EPHEMERAL_HI + 1, size=n, dtype=np.int64
        ).astype(np.uint16)
