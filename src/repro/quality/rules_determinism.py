"""Determinism rules (DET001–DET008).

DET001–DET006 apply only inside the determinism-scoped packages
(``repro.core``, ``repro.ml``, ``repro.features``, ``repro.resilience``
— see :data:`~repro.quality.engine.DETERMINISM_SCOPE`): those packages
carry the bit-identity contract that the batch- and shard-equivalence
suites enforce end to end.  DET007/DET008 (order-dependent set folds,
bare float equality) apply everywhere — they are wrong in any layer.

Name resolution is import-aware but static: ``import numpy as np``
makes ``np.random.rand`` resolve to ``numpy.random.rand``; an RNG
reached through an arbitrary variable is out of scope (that is what the
digest tests are for).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from .engine import Finding, ModuleInfo

__all__ = ["RULES"]


# ---------------------------------------------------------------------------
# import-aware qualified-name resolution
# ---------------------------------------------------------------------------
def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted names they import.

    ``import numpy as np``            → ``{"np": "numpy"}``
    ``from time import time as now``  → ``{"now": "time.time"}``
    ``from datetime import datetime`` → ``{"datetime": "datetime.datetime"}``
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[(a.asname or a.name).split(".")[0]] = a.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for a in node.names:
                if a.name == "*":
                    continue
                aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases


def qualified_name(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve a ``Name``/``Attribute`` chain to a dotted name, applying
    import aliases to the root."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


def _iter_calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


class _NameRule:
    """Shared machinery: flag references (or calls) to banned dotted
    names."""

    #: dotted name -> short explanation appended to the message
    banned: Dict[str, str] = {}
    calls_only = True
    scoped = True  # determinism scope only

    def _applies(self, module: ModuleInfo) -> bool:
        return module.in_determinism_scope if self.scoped else True

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not self._applies(module):
            return
        aliases = import_aliases(module.tree)
        if self.calls_only:
            targets = [c.func for c in _iter_calls(module.tree)]
        else:
            # Flag any load of the name — a bare reference stored as a
            # default callable is just as nondeterministic as a call.
            targets = [
                n for n in ast.walk(module.tree)
                if isinstance(n, (ast.Attribute, ast.Name))
                and isinstance(getattr(n, "ctx", None), ast.Load)
            ]
        seen: set = set()
        for t in targets:
            qn = qualified_name(t, aliases)
            if qn is None or qn not in self.banned:
                continue
            # An Attribute chain yields nested candidate nodes; dedupe
            # per (line, name) so one reference reports once.
            key = (t.lineno, qn)
            if key in seen:
                continue
            seen.add(key)
            yield Finding(
                module.path, t.lineno, self.id,
                f"{qn} — {self.banned[qn]}",
            )


class WallClockRule(_NameRule):
    id = "DET001"
    summary = (
        "wall-clock time source inside a determinism-scoped package "
        "(core/ml/features/resilience)"
    )
    calls_only = False
    banned = {
        name: "wall-clock read; replays stop being bit-identical"
        for name in (
            "time.time", "time.time_ns", "time.localtime", "time.gmtime",
            "time.ctime", "time.asctime", "time.strftime",
            "datetime.datetime.now", "datetime.datetime.utcnow",
            "datetime.datetime.today", "datetime.date.today",
        )
    }


class InjectableClockRule(_NameRule):
    id = "DET002"
    summary = (
        "time-dependent primitive (monotonic clock / sleep) in a "
        "determinism-scoped package; must be injectable and carry an "
        "allow[] with the reason"
    )
    calls_only = False
    banned = {
        name: (
            "time-dependent primitive; keep it an injectable default and "
            "suppress with the reason"
        )
        for name in (
            "time.perf_counter", "time.perf_counter_ns",
            "time.monotonic", "time.monotonic_ns",
            "time.process_time", "time.process_time_ns",
            "time.sleep",
        )
    }


class StdlibRandomRule:
    id = "DET003"
    summary = (
        "stdlib random module inside a determinism-scoped package "
        "(use repro.common.rng.as_generator)"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_determinism_scope:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                names = [a.name for a in node.names]
                if any(n == "random" or n.startswith("random.") for n in names):
                    yield Finding(
                        module.path, node.lineno, self.id,
                        "import random — stdlib RNG is process-global and "
                        "unseedable per-component; use "
                        "repro.common.rng.as_generator",
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and (node.module or "").split(".")[0] == "random":
                    yield Finding(
                        module.path, node.lineno, self.id,
                        f"from {node.module} import … — stdlib RNG is "
                        "process-global; use repro.common.rng.as_generator",
                    )


#: Legacy numpy global-state RNG entry points (seeded or not, they share
#: one hidden global stream).
_NP_GLOBAL_RNG = (
    "seed", "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "normal", "uniform",
    "poisson", "exponential", "binomial", "bytes",
)


class UnseededRngRule:
    id = "DET004"
    summary = (
        "unseeded or global-state NumPy RNG inside a determinism-scoped "
        "package (thread seeds through repro.common.rng.as_generator)"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_determinism_scope:
            return
        aliases = import_aliases(module.tree)
        for call in _iter_calls(module.tree):
            qn = qualified_name(call.func, aliases)
            if qn is None:
                continue
            if qn in ("numpy.random.default_rng", "numpy.random.RandomState"):
                if not call.args and not call.keywords:
                    yield Finding(
                        module.path, call.lineno, self.id,
                        f"{qn}() without a seed draws OS entropy — thread "
                        "the run seed through as_generator",
                    )
            elif (
                qn.startswith("numpy.random.")
                and qn.rsplit(".", 1)[1] in _NP_GLOBAL_RNG
            ):
                yield Finding(
                    module.path, call.lineno, self.id,
                    f"{qn}() uses numpy's hidden global stream — draw from "
                    "an explicit Generator instead",
                )


class OsEntropyRule(_NameRule):
    id = "DET005"
    summary = (
        "OS entropy source inside a determinism-scoped package"
    )
    calls_only = False
    banned = {
        "os.urandom": "raw OS entropy; not replayable",
        "secrets.token_bytes": "OS entropy; not replayable",
        "secrets.token_hex": "OS entropy; not replayable",
        "secrets.token_urlsafe": "OS entropy; not replayable",
        "secrets.randbelow": "OS entropy; not replayable",
        "secrets.choice": "OS entropy; not replayable",
        "uuid.uuid1": "host/time-dependent UUID; not replayable",
        "uuid.uuid4": "OS-entropy UUID; not replayable",
    }


class IdHashRule:
    id = "DET006"
    summary = (
        "id() inside a determinism-scoped package — addresses vary per "
        "process, so any id()-derived key/hash breaks replay and "
        "cross-shard identity"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_determinism_scope:
            return
        aliases = import_aliases(module.tree)
        for call in _iter_calls(module.tree):
            if qualified_name(call.func, aliases) == "id":
                yield Finding(
                    module.path, call.lineno, self.id,
                    "id() is an object address — unstable across runs and "
                    "processes; key on canonical flow keys or explicit ids",
                )


# ---------------------------------------------------------------------------
# DET007: set iteration feeding order-dependent consumers
# ---------------------------------------------------------------------------
def _is_set_expr(node: ast.AST, aliases: Dict[str, str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        qn = qualified_name(node.func, aliases)
        if qn in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "union", "intersection", "difference", "symmetric_difference",
        ):
            return _is_set_expr(node.func.value, aliases)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, aliases) or _is_set_expr(
            node.right, aliases
        )
    return False


#: Reductions whose float result depends on iteration order, plus
#: materializers that bake the order into a sequence.
_ORDER_SENSITIVE = {
    "sum", "math.fsum", "functools.reduce",
    "numpy.sum", "numpy.prod", "numpy.cumsum", "numpy.mean", "numpy.std",
    "numpy.asarray", "numpy.array", "numpy.fromiter",
    "list", "tuple",
}


class SetOrderRule:
    id = "DET007"
    summary = (
        "set iteration feeding an order-dependent reduction or "
        "materialization (wrap in sorted())"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        aliases = import_aliases(module.tree)
        for call in _iter_calls(module.tree):
            qn = qualified_name(call.func, aliases)
            is_join = (
                isinstance(call.func, ast.Attribute)
                and call.func.attr == "join"
            )
            if qn not in _ORDER_SENSITIVE and not is_join:
                continue
            if not call.args:
                continue
            arg = call.args[0]
            if isinstance(arg, ast.GeneratorExp):
                seeds = [gen.iter for gen in arg.generators]
            else:
                seeds = [arg]
            if any(_is_set_expr(s, aliases) for s in seeds):
                what = qn if qn is not None else f"str.{call.func.attr}"
                yield Finding(
                    module.path, call.lineno, self.id,
                    f"{what}() over a set — iteration order is not part of "
                    "the contract (hash-randomized for str/object "
                    "elements); sort first",
                )


class FloatEqualityRule:
    id = "DET008"
    summary = (
        "equality comparison against a nonzero float literal "
        "(use an explicit tolerance)"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            for comp in [node.left, *node.comparators]:
                neg = isinstance(comp, ast.UnaryOp) and isinstance(
                    comp.op, ast.USub
                )
                lit = comp.operand if neg else comp  # type: ignore[attr-defined]
                if (
                    isinstance(lit, ast.Constant)
                    and isinstance(lit.value, float)
                    and lit.value != 0.0
                ):
                    yield Finding(
                        module.path, node.lineno, self.id,
                        f"== against float literal {ast.unparse(comp)} — "
                        "computed floats rarely compare exactly equal; "
                        "compare with a tolerance (0.0 sentinels are "
                        "exempt)",
                    )
                    break


RULES = [
    WallClockRule(),
    InjectableClockRule(),
    StdlibRandomRule(),
    UnseededRngRule(),
    OsEntropyRule(),
    IdHashRule(),
    SetOrderRule(),
    FloatEqualityRule(),
]
