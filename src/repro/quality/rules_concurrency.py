"""Concurrency rules (CONC001–CONC006).

CONC001/CONC002 encode the :class:`~repro.common.buffers.SharedRing`
SPSC publication protocol.  The ring's only memory-ordering guarantee is
*program order within one process*: the producer must fully write slot
data before advancing ``tail``, the consumer must fully copy slot data
out before advancing ``head``, and both cursors are monotonic counters.
A refactor that hoists a cursor store above the data transfer — or
resets a cursor mid-stream — compiles, passes small unit tests, and
corrupts records only under load.  These rules recognize the cursor
idiom structurally (a subscripted ``_head``/``_tail`` store next to
``_slots`` traffic) so any future ring-like class is covered too.

CONC003/CONC004 guard the ``multiprocessing`` spawn boundary used by
:mod:`repro.core.sharding`: mutable module globals silently fork into
divergent per-process copies, and closure-captured functions do not
survive a spawn pickle at all.

CONC005 guards liveness at the same boundary: a ring ``push``/``pop``/
``pop_exact`` with neither a ``timeout=`` nor a ``peer_alive=`` guard
blocks forever when the peer process dies — the exact
infinite-backpressure hang the supervised runtime exists to prevent.
``pop_exact`` is the frame protocol's blocking exact-length read (one
call per frame header, one per payload); its ``timeout`` is the second
positional parameter, so a positional deadline counts as a guard too.

CONC006 keeps ring mutations *sanitizer-visible*: the REPRO_SANITIZE=1
runtime observers (:mod:`repro.verify.sanitizer`) mirror every cursor
store that ``SharedRing``'s own methods perform — a direct
``._head[0]``/``._tail[0]``/``._slots[...]`` store anywhere else would
mutate protocol state behind the observers' backs (and behind the
model checker's correspondence argument), so any such store outside
``repro.common.buffers`` is a finding.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from .engine import Finding, ModuleInfo

__all__ = ["RULES"]

_CURSORS = ("_head", "_tail")
_SLOTS = "_slots"


def _cursor_store(node: ast.stmt) -> Optional[Tuple[str, ast.Assign]]:
    """Match ``<expr>._head[0] = …`` / ``<expr>._tail[0] = …``."""
    if not isinstance(node, ast.Assign) or len(node.targets) != 1:
        return None
    t = node.targets[0]
    if (
        isinstance(t, ast.Subscript)
        and isinstance(t.value, ast.Attribute)
        and t.value.attr in _CURSORS
    ):
        return t.value.attr, node
    return None


def _touches_slots(node: ast.AST, ctx: type) -> bool:
    """Does this statement read (ctx=Load) or write (ctx=Store) a
    ``._slots[...]`` subscript?"""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Subscript)
            and isinstance(sub.value, ast.Attribute)
            and sub.value.attr == _SLOTS
            and isinstance(sub.ctx, ctx)
        ):
            return True
    return False


def _blocks(fn: ast.AST) -> Iterator[List[ast.stmt]]:
    """Every straight-line statement block inside a function."""
    for node in ast.walk(fn):
        for attr in ("body", "orelse", "finalbody"):
            block = getattr(node, attr, None)
            if isinstance(block, list) and block and isinstance(
                block[0], ast.stmt
            ):
                yield block


class RingPublishOrderRule:
    id = "CONC001"
    summary = (
        "SharedRing cursor published before its slot data transfer "
        "completed (SPSC protocol: data first, cursor last)"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for fn in ast.walk(module.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for block in _blocks(fn):
                published_at: Optional[Tuple[str, int]] = None
                for stmt in block:
                    hit = _cursor_store(stmt)
                    if hit is not None:
                        published_at = (hit[0], stmt.lineno)
                        continue
                    if published_at is None:
                        continue
                    cursor, pub_line = published_at
                    # tail publish hands slots to the consumer: no later
                    # slot *write* may follow in the same block.  head
                    # publish hands slots back to the producer: no later
                    # slot *read* may follow.
                    bad = _touches_slots(
                        stmt, ast.Store if cursor == "_tail" else ast.Load
                    )
                    if bad:
                        verb = "written" if cursor == "_tail" else "read"
                        yield Finding(
                            module.path, stmt.lineno, self.id,
                            f"slot data {verb} after the {cursor}[0] store "
                            f"on line {pub_line} — the peer process may "
                            "already own these slots; move the cursor "
                            "store after the data transfer",
                        )


class RingCursorMonotonicRule:
    id = "CONC002"
    summary = (
        "SharedRing cursor store is not a monotonic advance "
        "(must be `cursor + n`; zero-reset allowed only in __init__)"
    )

    #: functions in which a constant-zero cursor reset is legitimate
    _INIT_FNS = ("__init__", "reset", "clear")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for fn in ast.walk(module.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for node in ast.walk(fn):
                if not isinstance(node, ast.stmt):
                    continue
                hit = _cursor_store(node)
                if hit is None:
                    continue
                cursor, assign = hit
                rhs = assign.value
                if isinstance(rhs, ast.BinOp) and isinstance(rhs.op, ast.Add):
                    continue  # cursor + n: monotonic advance
                if (
                    isinstance(rhs, ast.Constant)
                    and rhs.value == 0
                    and fn.name in self._INIT_FNS
                ):
                    continue  # zero init before the ring is shared
                yield Finding(
                    module.path, node.lineno, self.id,
                    f"{cursor}[0] = {ast.unparse(rhs)} — cursors are "
                    "monotonic counters (`cursor + n`); any other store "
                    "can regress the peer's view of the fill level",
                )


def _imports_multiprocessing(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(
                a.name.split(".")[0] in ("multiprocessing", "concurrent")
                for a in node.names
            ):
                return True
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if (node.module or "").split(".")[0] in (
                "multiprocessing", "concurrent",
            ):
                return True
    return False


_MUTABLE_CALLS = ("list", "dict", "set", "defaultdict", "deque", "Counter")


class MutableGlobalRule:
    id = "CONC003"
    summary = (
        "mutable module-level global in a multiprocessing module — "
        "each process mutates its own copy (fork) or a re-imported one "
        "(spawn); pass state explicitly"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not _imports_multiprocessing(module.tree):
            return
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            names = [
                t.id for t in targets
                if isinstance(t, ast.Name)
                and not (t.id.startswith("__") and t.id.endswith("__"))
            ]
            if not names:
                continue
            mutable = isinstance(
                value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                        ast.DictComp, ast.SetComp)
            ) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in _MUTABLE_CALLS
            )
            if mutable:
                yield Finding(
                    module.path, stmt.lineno, self.id,
                    f"module-level mutable global {', '.join(names)} in a "
                    "module that spawns processes — worker copies diverge "
                    "silently; pass state through the worker spec instead",
                )


class SpawnClosureRule:
    id = "CONC004"
    summary = (
        "closure or lambda handed across a process boundary — "
        "unpicklable under spawn, and captured state diverges under fork"
    )

    _SPAWN_FUNCS = ("Process",)
    _SUBMIT_METHODS = ("submit", "apply", "apply_async", "map", "map_async",
                       "starmap", "imap", "imap_unordered")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        # Names bound by module-level defs are spawn-safe targets.
        top_level = {
            n.name for n in module.tree.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for fn in ast.walk(module.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            local_defs = {
                n.name for n in ast.walk(fn)
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
                and n is not fn
            }
            for call in ast.walk(fn):
                if not isinstance(call, ast.Call):
                    continue
                func = call.func
                name = (
                    func.attr if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name) else None
                )
                candidates: List[ast.expr] = []
                if name in self._SPAWN_FUNCS:
                    candidates = [
                        kw.value for kw in call.keywords if kw.arg == "target"
                    ]
                elif name in self._SUBMIT_METHODS and isinstance(
                    func, ast.Attribute
                ):
                    candidates = list(call.args[:1])
                for cand in candidates:
                    if isinstance(cand, ast.Lambda):
                        yield Finding(
                            module.path, cand.lineno, self.id,
                            "lambda passed across a process boundary — "
                            "not picklable under spawn; use a module-level "
                            "function",
                        )
                    elif (
                        isinstance(cand, ast.Name)
                        and cand.id in local_defs
                        and cand.id not in top_level
                    ):
                        yield Finding(
                            module.path, cand.lineno, self.id,
                            f"nested function {cand.id!r} passed across a "
                            "process boundary — closures are not picklable "
                            "under spawn; hoist it to module level",
                        )


def _receiver_name(expr: ast.expr) -> Optional[str]:
    """Terminal identifier of a call receiver: ``ring`` for
    ``ring.push``, ``rings`` for ``self.rings[shard].push``."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Subscript):
        return _receiver_name(expr.value)
    if isinstance(expr, ast.Call):
        return _receiver_name(expr.func)
    return None


class UnboundedRingWaitRule:
    id = "CONC005"
    summary = (
        "ring push/pop without a timeout or peer-liveness guard — "
        "blocks forever if the peer process dies"
    )

    _WAIT_METHODS = ("push", "pop", "pop_exact")
    _GUARD_KWARGS = ("timeout", "peer_alive")
    #: methods whose second positional parameter is the timeout — a
    #: positional deadline is as much of a guard as ``timeout=``.
    _POSITIONAL_TIMEOUT = ("pop_exact",)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for call in ast.walk(module.tree):
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in self._WAIT_METHODS
            ):
                continue
            receiver = _receiver_name(func.value)
            if receiver is None or "ring" not in receiver.lower():
                continue
            kwargs = {kw.arg for kw in call.keywords}
            if kwargs.intersection(self._GUARD_KWARGS):
                continue
            if func.attr in self._POSITIONAL_TIMEOUT and len(call.args) >= 2:
                continue
            yield Finding(
                module.path, call.lineno, self.id,
                f"{receiver}.{func.attr}(...) has neither `timeout=` nor "
                "`peer_alive=` — a dead peer process turns this wait into "
                "an unbounded hang; pass a deadline or a liveness probe",
            )


class SanitizerVisibleMutationRule:
    id = "CONC006"
    summary = (
        "SharedRing cursor/slot storage mutated outside "
        "repro.common.buffers — invisible to the REPRO_SANITIZE "
        "observers"
    )

    #: the one module whose methods legitimately store the cursors and
    #: slot array (and notify the sanitizer observers when they do)
    _RING_HOME = "repro.common.buffers"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.module.startswith("repro"):
            return
        if module.module == self._RING_HOME:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Assign, ast.AugAssign)):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for t in targets:
                if not (
                    isinstance(t, ast.Subscript)
                    and isinstance(t.value, ast.Attribute)
                    and t.value.attr in _CURSORS + (_SLOTS,)
                ):
                    continue
                yield Finding(
                    module.path, node.lineno, self.id,
                    f"direct store to `{t.value.attr}[...]` outside "
                    f"{self._RING_HOME} — ring state must be mutated "
                    "through SharedRing methods (push/pop/reset) so the "
                    "REPRO_SANITIZE=1 observers see every cursor "
                    "transition",
                )


RULES = [
    RingPublishOrderRule(),
    RingCursorMonotonicRule(),
    MutableGlobalRule(),
    SpawnClosureRule(),
    UnboundedRingWaitRule(),
    SanitizerVisibleMutationRule(),
]
