"""Layering rules (LAY001–LAY002): the import contract for ``repro``.

The package stack, lowest layer first::

    0  repro.common            shared substrate (buffers, RNG plumbing)
    1  repro.dataplane         discrete-event switches/links/topology
    2  repro.int_telemetry | repro.sflow | repro.traffic
       repro.ml | repro.baselines | repro.sketch   peer leaf stacks
       (repro.sketch consumes only pre-hashed flow identities, so it
       slots between common and features without touching either)
    3  repro.features          feature engineering over telemetry
    4  repro.resilience        chaos + degradation primitives
       (repro.resilience.harness is overridden to layer 10 — it drives
       whole experiments and legitimately sits above core/analysis,
       mitigation, and the control plane)
    5  repro.datasets          campaign/testbed builders
    6  repro.core              the four-module detection mechanism
    7  repro.analysis          tables, figures, experiment drivers
    7  repro.lifecycle         drift-triggered retraining + hot swap
       (peers with analysis: both sit on core, neither imports the
       other)
    8  repro.mitigation        rules, enforcement, the controller
    9  repro.controlplane      alerts + episode→action bridge + APIs
   10  repro.resilience.harness
   11  repro.cli | repro.verify
       (repro.verify models the whole protocol stack, so it sits with
       the drivers; the env-gated sanitizer imports inside buffers/
       core are suppressed LAY001 back-edges that only execute under
       REPRO_SANITIZE=1)

A module may import strictly *down* the stack.  Imports inside one
subpackage (``repro.core.x → repro.core.y``) are free; imports between
different packages on the same layer are back-edges too — peers must
not couple laterally.  ``repro.quality`` (this package) is pinned to
layer 0 with no intra-repro imports at all, so the linter can never
grow a dependency on the code it checks.

LAY002 additionally keeps private modules private: ``repro.X._internal``
may only be imported from inside ``repro.X``.

Longest-prefix matching means new subpackages must be added to
:data:`LAYERS` — an unknown ``repro.*`` module is itself a finding
(LAY001), so the contract cannot silently rot.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from .engine import Finding, ModuleInfo

__all__ = ["RULES", "LAYERS", "layer_of"]

#: Longest-prefix → layer rank.  Order within the dict is irrelevant.
LAYERS = {
    "repro": 12,          # package root + __main__ sit above everything
    "repro.__main__": 12,
    "repro.common": 0,
    "repro.quality": 0,
    "repro.dataplane": 1,
    "repro.int_telemetry": 2,
    "repro.sflow": 2,
    "repro.traffic": 2,
    "repro.ml": 2,
    "repro.baselines": 2,
    "repro.sketch": 2,
    "repro.features": 3,
    "repro.resilience": 4,
    "repro.resilience.harness": 10,
    "repro.datasets": 5,
    "repro.core": 6,
    "repro.analysis": 7,
    "repro.lifecycle": 7,
    "repro.mitigation": 8,
    "repro.controlplane": 9,
    "repro.verify": 11,
    "repro.cli": 11,
}


def layer_of(module: str) -> Optional[int]:
    """Layer rank by longest matching prefix; ``None`` if unknown.

    The bare ``"repro"`` entry matches only the package root itself —
    otherwise it would swallow every unmapped subpackage and defeat the
    add-new-packages-to-the-map check.
    """
    parts = module.split(".")
    for i in range(len(parts), 0, -1):
        prefix = ".".join(parts[:i])
        if prefix == "repro" and module != "repro":
            continue
        if prefix in LAYERS:
            return LAYERS[prefix]
    return None


def _package_of(module: str) -> str:
    """Subpackage granularity at which imports are free:
    ``repro.core.sharding`` → ``repro.core``; ``repro.cli`` →
    ``repro.cli``."""
    parts = module.split(".")
    return ".".join(parts[:2]) if len(parts) >= 2 else parts[0]


def _resolve_relative(module: ModuleInfo, node: ast.ImportFrom) -> Optional[str]:
    """Absolute dotted base of a relative import, or ``None`` if the
    import escapes the package tree.

    Relative imports resolve against ``__package__``: the parent for a
    regular module, the package itself for an ``__init__``.  ``level=1``
    is ``__package__``; each further level walks one parent up.
    """
    parts = module.module.split(".")
    pkg = parts if module.is_package else parts[:-1]
    up = node.level - 1
    if up > len(pkg):
        return None
    base = pkg[: len(pkg) - up]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base) if base else None


def imported_repro_modules(
    module: ModuleInfo,
) -> Iterator[Tuple[int, str]]:
    """Yield ``(lineno, target)`` for every intra-repro import edge.

    ``from X import a, b`` expands to targets ``X.a`` and ``X.b`` — a
    name may be a submodule or an attribute, and longest-prefix layer
    lookup ranks both correctly.  Relative imports are resolved to
    absolute names first.
    """
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                if a.name == "repro" or a.name.startswith("repro."):
                    yield node.lineno, a.name
        elif isinstance(node, ast.ImportFrom):
            if node.level > 0:
                base = _resolve_relative(module, node)
            else:
                base = node.module
            if base is None:
                continue
            if base != "repro" and not base.startswith("repro."):
                continue
            for a in node.names:
                if a.name == "*":
                    yield node.lineno, base
                else:
                    yield node.lineno, f"{base}.{a.name}"


class ImportContractRule:
    id = "LAY001"
    summary = (
        "import contract back-edge: modules may only import strictly "
        "lower layers (common → … → core → … → cli)"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.module.startswith("repro"):
            return
        src_layer = layer_of(module.module)
        if src_layer is None:
            yield Finding(
                module.path, 1, self.id,
                f"module {module.module} is not in the layer map — add it "
                "to repro.quality.rules_layering.LAYERS",
            )
            return
        src_pkg = _package_of(module.module)
        if src_pkg == "repro.quality":
            for lineno, target in imported_repro_modules(module):
                if _package_of(target) != "repro.quality":
                    yield Finding(
                        module.path, lineno, self.id,
                        f"repro.quality must not import {target} — the "
                        "linter stays independent of the code it checks",
                    )
            return
        for lineno, target in imported_repro_modules(module):
            if _package_of(target) == src_pkg:
                continue  # intra-package imports are free
            dst_layer = layer_of(target)
            if dst_layer is None:
                yield Finding(
                    module.path, lineno, self.id,
                    f"import target {target} is not in the layer map — "
                    "add it to repro.quality.rules_layering.LAYERS",
                )
            elif dst_layer >= src_layer:
                kind = "lateral peer import" if dst_layer == src_layer \
                    else "back-edge"
                yield Finding(
                    module.path, lineno, self.id,
                    f"{kind}: {module.module} (layer {src_layer}) imports "
                    f"{target} (layer {dst_layer}); the contract is "
                    "common → dataplane → leaf stacks → features → "
                    "resilience → datasets → core → analysis → "
                    "drivers → cli",
                )


class PrivateImportRule:
    id = "LAY002"
    summary = (
        "private module or name imported across a package boundary"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.module.startswith("repro"):
            return
        src_pkg = _package_of(module.module)
        for lineno, target in imported_repro_modules(module):
            if _package_of(target) == src_pkg:
                continue
            for p in target.split("."):
                if p.startswith("_") and not p.startswith("__"):
                    yield Finding(
                        module.path, lineno, self.id,
                        f"{target} reaches into a private name ({p!r}) "
                        "from outside its package; import through the "
                        "package's public API",
                    )
                    break


RULES = [ImportContractRule(), PrivateImportRule()]
