"""Command-line entry point: ``python -m repro.quality.lint [paths]``.

Exit status: 0 when no actionable findings remain after inline
suppressions and the baseline; 1 when findings remain; 2 on usage or
internal errors.  The CI ``lint`` job runs this over ``src/repro`` and
gates merges on it, next to tier-1 and perf-quick.

Typical invocations::

    python -m repro.quality.lint src/repro           # the CI gate
    python -m repro.quality.lint --list-rules        # rule catalogue
    python -m repro.quality.lint --rule DET001 src/  # one rule only
    python -m repro.quality.lint --write-baseline src/repro
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .engine import (
    all_rules,
    baseline_key,
    iter_python_files,
    lint_paths,
    load_baseline,
    load_module,
    write_baseline,
)

__all__ = ["main"]

#: The checked-in baseline of grandfathered findings rides next to the
#: package so its location is independent of the invocation directory.
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def _default_target() -> Path:
    """``src/repro`` when run from the repo root, else the installed
    package tree this module lives in."""
    candidate = Path("src/repro")
    if candidate.is_dir():
        return candidate
    return Path(__file__).resolve().parent.parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.quality.lint",
        description=(
            "reprolint: AST-based determinism, concurrency and layering "
            "checks for this repository"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help="baseline JSON of grandfathered findings "
             "(default: the checked-in src/repro/quality/baseline.json)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="report every finding, ignoring the baseline",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline file from the current findings "
             "and exit 0",
    )
    parser.add_argument(
        "--rule", action="append", default=None, metavar="RULE-ID",
        help="run only the given rule(s); repeatable",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--verbose", "-v", action="store_true",
        help="also show suppressed and baselined findings",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    rules = all_rules()

    if args.list_rules:
        for rule in rules:
            print(f"{rule.id}  {rule.summary}")
        print("QUAL001  suppression comment is missing its mandatory reason")
        print("QUAL002  suppression comment matches no finding (stale)")
        print("QUAL003  baseline entry matches no finding (stale)")
        return 0

    if args.rule:
        wanted = set(args.rule)
        known = {r.id for r in rules}
        unknown = wanted - known
        if unknown:
            print(
                f"unknown rule id(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2
        rules = [r for r in rules if r.id in wanted]

    paths: List[Path] = list(args.paths) or [_default_target()]
    for p in paths:
        if not p.exists():
            print(f"no such path: {p}", file=sys.stderr)
            return 2

    if args.write_baseline:
        result = lint_paths(paths, baseline=None, rules=rules)
        entries = []
        for f in result.findings:
            module = load_module(Path(f.path))
            entries.append(baseline_key(module, f))
        # Entries outside this run's scope (file not linted, or rule
        # filtered out) cannot be judged stale — carry them over.
        # Everything in scope is regenerated from current findings, so
        # stale entries drop out here.
        active_ids = {r.id for r in rules}
        carried = 0
        for e in load_baseline(args.baseline):
            if not result.covers(e["path"]) or e["rule"] not in active_ids:
                entries.append((e["path"], e["rule"], e["content"]))
                carried += 1
        write_baseline(args.baseline, entries)
        note = f" ({carried} out-of-scope carried over)" if carried else ""
        print(
            f"wrote {len(entries)} baseline entr"
            f"{'y' if len(entries) == 1 else 'ies'} to {args.baseline}{note}"
        )
        return 0

    baseline = None if args.no_baseline else load_baseline(args.baseline)
    result = lint_paths(paths, baseline=baseline, rules=rules)

    for f in result.findings:
        print(f.render())
    if args.verbose:
        for f in result.suppressed:
            print(f"{f.render()}  [suppressed]")
        for f in result.baselined:
            print(f"{f.render()}  [baselined]")
    # Stale baseline entries surface as QUAL003 findings above (exit 1),
    # so no separate advisory note is needed here.
    checked = sum(1 for _ in iter_python_files(paths))
    summary = (
        f"{checked} file{'s' if checked != 1 else ''} checked: "
        f"{len(result.findings)} finding"
        f"{'s' if len(result.findings) != 1 else ''}"
    )
    extras = []
    if result.suppressed:
        extras.append(f"{len(result.suppressed)} suppressed")
    if result.baselined:
        extras.append(f"{len(result.baselined)} baselined")
    if extras:
        summary += f" ({', '.join(extras)})"
    print(summary, file=sys.stderr)
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
