"""reprolint — AST-based determinism & concurrency lint for this repo.

PRs 2–3 made the detector's correctness contract *bit-identity*: the
batched path must equal the scalar path, and the shard-parallel merge
must equal the single-process run for any worker count, clean and under
chaos.  End-to-end digest tests enforce that contract after the fact;
one stray ``time.time()``, unseeded ``np.random.default_rng()``,
set-order-dependent fold, or misordered :class:`SharedRing` cursor
write silently breaks it and costs hours of digest-bisecting.  This
package catches those regressions *at analysis time* with three
project-specific rule sets:

* **determinism** (:mod:`.rules_determinism`) — bans wall-clock reads,
  the stdlib ``random`` module, unseeded NumPy RNGs, OS entropy and
  ``id()`` inside the determinism-scoped packages (``core``, ``ml``,
  ``features``, ``resilience``); flags set-iteration feeding numeric
  reductions and bare float equality everywhere.
* **concurrency** (:mod:`.rules_concurrency`) — checks the SharedRing
  SPSC publication protocol (slot data written before the cursor store,
  cursor stores monotonic) and flags mutable module globals and
  closure-captured state crossing ``multiprocessing`` spawn boundaries.
* **layering** (:mod:`.rules_layering`) — enforces the import contract
  ``common → dataplane → leaf stacks → features → resilience →
  datasets → core → analysis → mitigation/controlplane/harness → cli``
  with no back-edges, over all of ``src/repro``.

Run it with ``python -m repro.quality.lint src/repro``.  Findings print
as ``path:line: RULE-ID message``; deliberate exceptions carry a
``# repro: allow[RULE-ID] reason`` comment (reason required), and
grandfathered findings live in the checked-in ``baseline.json``.

The framework itself is dependency-free (stdlib ``ast`` only) and sits
outside the layer stack: it may import nothing from the rest of
``repro``, which is enforced by its own layering rule.
"""

from .engine import (
    Finding,
    LintResult,
    ModuleInfo,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
)

__all__ = [
    "Finding",
    "LintResult",
    "ModuleInfo",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
]
