"""Lint framework: module model, suppressions, baseline, runner.

The engine is deliberately tiny and dependency-free.  A *rule* is an
object with an ``id``, a ``summary`` and a ``check(module)`` generator
yielding :class:`Finding`\\ s; the engine walks the target tree, parses
each file once into a :class:`ModuleInfo`, fans it through every rule,
then subtracts inline suppressions and the checked-in baseline.

Suppression syntax (reason **required**)::

    x = time.perf_counter_ns  # repro: allow[DET002] injectable default

A suppression comment on its own line applies to the next code line.
Multiple IDs may share a comment: ``allow[DET002,CONC003] why``.
A suppression without a reason is itself a finding (``QUAL001``), and a
suppression that matches nothing is flagged too (``QUAL002``) so stale
annotations cannot accumulate.

Baseline entries are matched by ``(package-relative path, rule id,
stripped source line)`` — line *content*, not line number, so unrelated
edits above a grandfathered finding do not invalidate it.  A baseline
entry that no longer matches anything a run could have found (its file
was linted with its rule active, yet no finding claimed it) is itself a
finding (``QUAL003``): a rotted baseline entry would otherwise sit
ready to silently absorb the next real regression at the same key.
"""

from __future__ import annotations

import ast
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Protocol, Sequence, Tuple

__all__ = [
    "Finding",
    "LintResult",
    "ModuleInfo",
    "Rule",
    "Suppression",
    "all_rules",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "write_baseline",
]

#: Packages whose hot paths carry the bit-identity contract; the
#: determinism rules DET001–DET006 apply only beneath these prefixes.
DETERMINISM_SCOPE: Tuple[str, ...] = (
    "repro.core",
    "repro.ml",
    "repro.features",
    "repro.sketch",
    "repro.resilience",
    "repro.lifecycle",
    "repro.mitigation",
    "repro.controlplane",
)

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]\s*(.*?)\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One lint hit: ``path:line: RULE-ID message``."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# repro: allow[...]`` comment."""

    line: int          # line the suppression *covers* (the code line)
    comment_line: int  # line the comment itself sits on
    rules: Tuple[str, ...]
    reason: str


@dataclass
class ModuleInfo:
    """One parsed source file, as seen by every rule."""

    path: str            # path as reported in findings (user-facing)
    module: str          # dotted module name, e.g. "repro.core.sharding"
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    suppressions: List[Suppression] = field(default_factory=list)
    is_package: bool = False  # True for __init__.py (relative-import anchor)

    @property
    def in_determinism_scope(self) -> bool:
        return self.module.startswith(DETERMINISM_SCOPE)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


class Rule(Protocol):
    """Interface every lint rule implements."""

    id: str
    summary: str

    def check(self, module: ModuleInfo) -> Iterator[Finding]: ...


# ---------------------------------------------------------------------------
# module loading
# ---------------------------------------------------------------------------
def module_name_for(path: Path) -> str:
    """Dotted module name from a file path, anchored at ``repro``.

    Files outside a ``repro`` package root (e.g. lint-test fixtures) get
    a synthetic ``_external.<stem>`` name, which no scoped rule matches.
    """
    parts = list(path.parts)
    name = parts[-1]
    stem = name[:-3] if name.endswith(".py") else name
    dirs = parts[:-1]
    try:
        anchor = len(dirs) - 1 - dirs[::-1].index("repro")
    except ValueError:
        return f"_external.{stem}"
    dotted = parts[anchor:-1] + ([] if stem == "__init__" else [stem])
    return ".".join(dotted)


def _parse_suppressions(source: str, lines: Sequence[str]) -> List[Suppression]:
    """Extract ``# repro: allow[...]`` comments via the tokenizer.

    Using :mod:`tokenize` (not a per-line regex) keeps a ``# repro:``
    sequence inside a string literal from being misread as a directive.
    """
    out: List[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(iter(lines).__next__)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _SUPPRESS_RE.search(tok.string)
            if m is None:
                continue
            rules = tuple(
                r.strip() for r in m.group(1).split(",") if r.strip()
            )
            comment_line = tok.start[0]
            # A comment with only whitespace before it covers the next
            # line of code; a trailing comment covers its own line.
            prefix = lines[comment_line - 1][: tok.start[1]]
            covers = comment_line + 1 if prefix.strip() == "" else comment_line
            out.append(Suppression(covers, comment_line, rules, m.group(2)))
    except tokenize.TokenError:
        pass  # syntax errors surface via ast.parse instead
    return out


def load_module(path: Path, display_path: Optional[str] = None) -> ModuleInfo:
    source = path.read_text(encoding="utf-8")
    return lint_module_info(
        source,
        module=module_name_for(path),
        path=display_path if display_path is not None else str(path),
        is_package=path.name == "__init__.py",
    )


def lint_module_info(
    source: str, module: str, path: str, is_package: bool = False
) -> ModuleInfo:
    tree = ast.parse(source, filename=path)
    lines = source.splitlines(keepends=True)
    return ModuleInfo(
        path=path,
        module=module,
        source=source,
        tree=tree,
        lines=[ln.rstrip("\n") for ln in lines],
        suppressions=_parse_suppressions(source, lines),
        is_package=is_package,
    )


# ---------------------------------------------------------------------------
# rule registry
# ---------------------------------------------------------------------------
def all_rules() -> List[Rule]:
    """Instantiate the full rule catalogue (stable ID order)."""
    from . import rules_concurrency, rules_determinism, rules_layering

    rules: List[Rule] = [
        *rules_determinism.RULES,
        *rules_concurrency.RULES,
        *rules_layering.RULES,
    ]
    return sorted(rules, key=lambda r: r.id)


# ---------------------------------------------------------------------------
# suppression + baseline subtraction
# ---------------------------------------------------------------------------
@dataclass
class LintResult:
    """Outcome of a lint run after suppression/baseline subtraction."""

    findings: List[Finding] = field(default_factory=list)        # actionable
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale_baseline: List[dict] = field(default_factory=list)
    #: package-relative paths (``repro/core/sharding.py``) of every
    #: module this run actually parsed.
    linted_paths: set = field(default_factory=set)
    #: package-relative prefixes (``repro/core``) of every *directory*
    #: target this run walked — a baseline entry under one of these is
    #: within the run's reach even if its file no longer exists.
    covered_prefixes: set = field(default_factory=set)

    def covers(self, rel_path: str) -> bool:
        """Could this run have produced a finding at ``rel_path``?"""
        return rel_path in self.linted_paths or any(
            rel_path.startswith(prefix + "/")
            for prefix in self.covered_prefixes
        )

    @property
    def ok(self) -> bool:
        return not self.findings


def _apply_suppressions(
    module: ModuleInfo, raw: List[Finding]
) -> Tuple[List[Finding], List[Finding]]:
    """Split raw findings into (kept, suppressed); emit QUAL meta-findings.

    QUAL001: suppression without a reason (reason is mandatory).
    QUAL002: suppression that matched no finding (stale annotation).
    """
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    used = [False] * len(module.suppressions)

    for f in raw:
        hit = None
        for i, sup in enumerate(module.suppressions):
            if f.line == sup.line and f.rule in sup.rules and sup.reason:
                hit = i
                break
        if hit is None:
            kept.append(f)
        else:
            used[hit] = True
            suppressed.append(f)

    for i, sup in enumerate(module.suppressions):
        if not sup.reason:
            kept.append(Finding(
                module.path, sup.comment_line, "QUAL001",
                "suppression is missing a reason: write "
                f"'# repro: allow[{','.join(sup.rules)}] <why>'",
            ))
        elif not used[i]:
            kept.append(Finding(
                module.path, sup.comment_line, "QUAL002",
                f"unused suppression for {','.join(sup.rules)} "
                "(nothing to allow here — delete it)",
            ))
    return kept, suppressed


def baseline_key(module: ModuleInfo, f: Finding) -> Tuple[str, str, str]:
    # Anchor the path at the package so the key survives cwd changes.
    rel = module.module.replace(".", "/") + ".py"
    return (rel, f.rule, module.line_text(f.line))


def load_baseline(path: Path) -> List[dict]:
    if not path.exists():
        return []
    data = json.loads(path.read_text(encoding="utf-8"))
    return list(data.get("entries", []))


def write_baseline(path: Path, entries: Iterable[Tuple[str, str, str]]) -> None:
    payload = {
        "version": 1,
        "entries": [
            {"path": p, "rule": r, "content": c}
            for p, r, c in sorted(set(entries))
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


# ---------------------------------------------------------------------------
# runners
# ---------------------------------------------------------------------------
def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    for p in paths:
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p


def lint_source(
    source: str,
    module: str = "_external.snippet",
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint a source string (test fixtures); returns post-suppression
    findings."""
    info = lint_module_info(source, module=module, path=path)
    active = list(rules) if rules is not None else all_rules()
    raw: List[Finding] = []
    for rule in active:
        raw.extend(rule.check(info))
    kept, _ = _apply_suppressions(info, sorted(raw, key=lambda f: (f.line, f.rule)))
    return kept


def lint_paths(
    paths: Sequence[Path],
    baseline: Optional[List[dict]] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> LintResult:
    """Lint files/trees and subtract the baseline.  The workhorse behind
    the CLI."""
    active = list(rules) if rules is not None else all_rules()
    remaining: Dict[Tuple[str, str, str], int] = {}
    for e in baseline or []:
        key = (e["path"], e["rule"], e["content"])
        remaining[key] = remaining.get(key, 0) + 1

    result = LintResult()
    for p in paths:
        if p.is_dir():
            # Package-relative prefix of the walked tree (pure string
            # anchoring on the "repro" path component, same as
            # module_name_for): entries beneath it are reachable by
            # this run even when their file has been deleted.
            prefix = module_name_for(p / "__init__.py").replace(".", "/")
            result.covered_prefixes.add(prefix)
    for file_path in iter_python_files(paths):
        try:
            module = load_module(file_path)
        except SyntaxError as exc:
            result.findings.append(Finding(
                str(file_path), exc.lineno or 1, "QUAL000",
                f"file does not parse: {exc.msg}",
            ))
            continue
        raw: List[Finding] = []
        for rule in active:
            raw.extend(rule.check(module))
        kept, suppressed = _apply_suppressions(
            module, sorted(raw, key=lambda f: (f.line, f.rule))
        )
        result.suppressed.extend(suppressed)
        result.linted_paths.add(module.module.replace(".", "/") + ".py")
        for f in kept:
            key = baseline_key(module, f)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                result.baselined.append(f)
            else:
                result.findings.append(f)

    # A leftover baseline entry is *stale* only when this run could
    # have matched it: its file sits inside a linted tree (deleted
    # files included) and its rule was active.  Entries outside the
    # run's scope (a ``--rule`` filter, a subset of paths) are neither
    # stale nor matched — they stay untouched.  Genuinely stale entries
    # become QUAL003 findings so a rotted baseline fails the gate
    # instead of silently shadowing a future regression at the same
    # key.
    active_ids = {r.id for r in active}
    for (p, r, c), n in sorted(remaining.items()):
        if not result.covers(p) or r not in active_ids:
            continue
        for _ in range(n):
            result.stale_baseline.append({"path": p, "rule": r, "content": c})
            result.findings.append(Finding(
                p, 1, "QUAL003",
                f"stale baseline entry for {r}: no current finding "
                f"matches {c!r} — delete it or refresh with "
                "--write-baseline",
            ))
    result.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return result
