"""Checkpoint packing for the fault-tolerant sharded runtime.

A shard worker's whole deterministic state — flow table (Welford
accumulators, LRU order), dirty-update map, prediction log, sliding
decision windows, panel quarantine state, cycle counters — can be
captured at a CYCLE boundary, shipped to the coordinator as one packed
blob, and restored into a freshly spawned worker after a crash.  The
coordinator then replays only the telemetry delivered *after* the
checkpoint (see :mod:`repro.core.sharding`), and because every module
restores bit-identical state the recovered run's merged prediction log
matches the unfaulted run byte for byte.

Blob format::

    MAGIC (8 bytes) | sha256(payload) (32 bytes) | payload (pickle)

The content hash makes a truncated or corrupted blob loudly detectable
(:class:`CheckpointError`) instead of silently restoring garbage —
checkpoints cross a process boundary over a pipe, and the writer may be
SIGKILLed mid-send.

Wall-clock stamps inside checkpointed state (dirty-map registration
stamps, stored prediction entries) are per-process values that the
digest excludes; carrying them through a restore keeps latency
*accounting* continuous but does not affect result identity.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from typing import TYPE_CHECKING, Any, Dict

if TYPE_CHECKING:
    from .mechanism import AutomatedDDoSDetector


def _sanitizer_observer() -> Any:
    """Per-process checkpoint observer when ``REPRO_SANITIZE=1``.

    The import is env-gated so normal runs never couple ``core`` to the
    verify layer; the observer asserts snapshot-cycle monotonicity and
    restore consistency (see :mod:`repro.verify.sanitizer`).
    """
    if os.environ.get("REPRO_SANITIZE") != "1":
        return None
    # repro: allow[LAY001] env-gated diagnostic shim: imported only under REPRO_SANITIZE=1
    from repro.verify.sanitizer import checkpoint_observer
    return checkpoint_observer()

__all__ = [
    "CheckpointError",
    "pack_state",
    "unpack_state",
    "pack_panel",
    "unpack_panel",
    "panel_content_hash",
    "snapshot_detector",
    "restore_detector",
]

#: Blob magic: identifies the format (and its version) so a foreign or
#: stale blob fails loudly instead of unpickling garbage.
MAGIC = b"RPRCKPT1"
_HASH_BYTES = 32


class CheckpointError(RuntimeError):
    """A checkpoint blob is malformed, truncated, or fails its hash."""


def pack_state(payload: Dict[str, Any]) -> bytes:
    """Serialize a state dict into a content-hashed blob."""
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return MAGIC + hashlib.sha256(body).digest() + body


def unpack_state(blob: bytes) -> Dict[str, Any]:
    """Verify and deserialize a :func:`pack_state` blob.

    Raises
    ------
    CheckpointError
        Wrong magic, truncated header, or content-hash mismatch.
    """
    header = len(MAGIC) + _HASH_BYTES
    if len(blob) < header or blob[: len(MAGIC)] != MAGIC:
        raise CheckpointError(
            f"not a checkpoint blob (length {len(blob)}, "
            f"magic {blob[:len(MAGIC)]!r})"
        )
    digest = blob[len(MAGIC) : header]
    body = blob[header:]
    if hashlib.sha256(body).digest() != digest:
        raise CheckpointError("checkpoint content hash mismatch")
    payload = pickle.loads(body)
    if not isinstance(payload, dict):
        raise CheckpointError(
            f"checkpoint payload is {type(payload).__name__}, expected dict"
        )
    return payload


# ---------------------------------------------------------------------------
# model-panel blobs (lifecycle hot swap)
# ---------------------------------------------------------------------------
def pack_panel(
    epoch: int, scaler: Any, models: Dict[str, Any], feature_names: Any
) -> bytes:
    """Serialize a retrained model panel for a swap broadcast.

    Reuses the RPRCKPT1 framing, so a truncated or corrupted panel blob
    fails the content hash instead of installing garbage models.  The
    blob travels the shard ring as a ``FRAME_SWAP`` payload and is
    archived by the supervisor so a worker respawned after the swap can
    reinstall the exact generation its checkpoint names.
    """
    return pack_state(
        {
            "panel_epoch": int(epoch),
            "scaler": scaler,
            "models": dict(models),
            "feature_names": list(feature_names),
        }
    )


def unpack_panel(blob: bytes) -> Dict[str, Any]:
    """Verify and deserialize a :func:`pack_panel` blob."""
    payload = unpack_state(blob)
    for field in ("panel_epoch", "scaler", "models", "feature_names"):
        if field not in payload:
            raise CheckpointError(f"panel blob missing field {field!r}")
    return payload


def panel_content_hash(blob: bytes) -> str:
    """Hex content hash of a panel blob (the sha256 already embedded in
    the RPRCKPT1 header) — the identity every shard records when it
    installs the panel, and the value checked on restore."""
    if len(blob) < len(MAGIC) + _HASH_BYTES or blob[: len(MAGIC)] != MAGIC:
        raise CheckpointError("not a panel blob")
    return blob[len(MAGIC) : len(MAGIC) + _HASH_BYTES].hex()


# ---------------------------------------------------------------------------
# detector-level composition
# ---------------------------------------------------------------------------
def snapshot_detector(
    det: "AutomatedDDoSDetector", cycles_done: int, last_seq: int
) -> bytes:
    """Capture one worker's full deterministic state at a CYCLE boundary.

    ``cycles_done`` is the number of CYCLE markers fully processed when
    the snapshot was taken and ``last_seq`` the highest global sequence
    number folded in — together they tell the coordinator exactly which
    suffix of the delivered stream a restored worker must replay.
    """
    payload: Dict[str, Any] = {
        "cycles_done": int(cycles_done),
        "last_seq": int(last_seq),
        "db": det.db.state_snapshot(),
        "processor": det.processor.state_snapshot(),
        "prediction": det.prediction.state_snapshot(),
        "central": det.central.state_snapshot(),
        "collection": det._collection_inner.state_snapshot(),
        "watchdog": det.watchdog.state_snapshot(),
    }
    if det.fault_injector is not None:
        payload["fault_injector"] = det.fault_injector.state_snapshot()
    # Duck-typed: the mitigation subsystem (a higher layer) registers
    # itself on the detector; its durable state — active blocks, TTL
    # deadlines, token buckets, whitelist config, activity ring, action
    # log — rides the same content-hashed frame as detector state so a
    # worker kill mid-episode restores blocks bit-identically.
    mitigation = getattr(det, "mitigation", None)
    if mitigation is not None:
        payload["mitigation"] = mitigation.state_snapshot()
    # Sketch gate: counters, residual aggregates, and window/promotion
    # tallies are deterministic worker state — a restored worker must
    # resume with bit-identical sketch cells or post-recovery admission
    # decisions (and therefore the merged prediction log) would diverge.
    gate = getattr(det, "sketch_gate", None)
    if gate is not None:
        payload["sketch"] = gate.state_snapshot()
    # Lifecycle manager (coordinator-side subsystem, duck-typed like
    # mitigation): drift-monitor reference, reservoir windows, swap
    # epoch, cooldown counters and the event log ride the checkpoint so
    # a restart resumes the train→serve→monitor→retrain loop exactly
    # where it stopped.
    lifecycle = getattr(det, "lifecycle", None)
    if lifecycle is not None:
        payload["lifecycle"] = lifecycle.state_snapshot()
    observer = _sanitizer_observer()
    if observer is not None:
        observer.on_pack(int(cycles_done))
    return pack_state(payload)


def restore_detector(det: "AutomatedDDoSDetector", blob: bytes) -> Dict[str, Any]:
    """Restore a freshly constructed detector from a checkpoint blob.

    The detector must have been built with the same construction recipe
    (bundle + ``worker_config``) as the checkpointed one — configuration
    is not part of the blob.  Returns the unpacked payload so callers
    can read ``cycles_done`` / ``last_seq``.
    """
    payload = unpack_state(blob)
    det.db.state_restore(payload["db"])
    det.processor.state_restore(payload["processor"])
    det.prediction.state_restore(payload["prediction"])
    det.central.state_restore(payload["central"])
    det._collection_inner.state_restore(payload["collection"])
    det.watchdog.state_restore(payload["watchdog"])
    if det.fault_injector is not None and "fault_injector" in payload:
        det.fault_injector.state_restore(payload["fault_injector"])
    mitigation = getattr(det, "mitigation", None)
    if mitigation is not None and "mitigation" in payload:
        mitigation.state_restore(payload["mitigation"])
    gate = getattr(det, "sketch_gate", None)
    if gate is not None and "sketch" in payload:
        gate.state_restore(payload["sketch"])
    lifecycle = getattr(det, "lifecycle", None)
    if lifecycle is not None and "lifecycle" in payload:
        lifecycle.state_restore(payload["lifecycle"])
    observer = _sanitizer_observer()
    if observer is not None:
        observer.on_restore(int(payload["cycles_done"]))
    return payload
