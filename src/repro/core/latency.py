"""Prediction-latency bookkeeping (Table VI columns 3–4).

The paper reports average and maximum prediction time per flow type —
and, for benign flows, the 99th percentile instead of the maximum (the
Table VI footnote).  :class:`LatencyTracker` accumulates latencies per
category and reproduces exactly those summary statistics.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

__all__ = ["LatencyTracker"]


class LatencyTracker:
    """Per-category latency accumulator."""

    def __init__(self) -> None:
        self._samples: Dict[str, List[int]] = {}

    def record(self, category: str, latency_ns: int) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency: {latency_ns}")
        self._samples.setdefault(category, []).append(int(latency_ns))

    def categories(self) -> List[str]:
        return list(self._samples.keys())

    def count(self, category: str) -> int:
        return len(self._samples.get(category, ()))

    def summary(self, category: str, percentile_max: float | None = None) -> dict:
        """Mean / max (or percentile) in seconds, as Table VI reports.

        Parameters
        ----------
        category : str
        percentile_max : float, optional
            Report this percentile instead of the true maximum (the
            paper uses the 99th for benign flows).
        """
        samples = self._samples.get(category)
        if not samples:
            raise KeyError(f"no latency samples for category {category!r}")
        arr = np.asarray(samples, dtype=np.float64) * 1e-9
        top = (
            float(np.percentile(arr, percentile_max))
            if percentile_max is not None
            else float(arr.max())
        )
        return {
            "count": int(arr.size),
            "avg_s": float(arr.mean()),
            "max_s": top,
            "p50_s": float(np.percentile(arr, 50)),
            "p99_s": float(np.percentile(arr, 99)),
        }
