"""Decision logic of the live mechanism (paper §IV-C4).

Two layers, both reproduced exactly:

1. **Model vote** — per update, the MLP/RF/GNB votes collapse to one
   aggregated label by majority ("if two or more of the predictions are
   1, then it is classified as an attack flow").
2. **Sliding window** — aggregated labels are not acted on immediately:
   "we wait for three predictions.  If two or more of the last three
   predictions are 1, then it is classified as an attack flow."  The
   window is per flow and slides, so every update after the third yields
   a decision.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional

import numpy as np

from repro.ml.voting import majority_vote

__all__ = ["SlidingDecision", "aggregate_votes"]


def aggregate_votes(votes: np.ndarray) -> int:
    """Collapse one update's per-model votes to a single 0/1 label."""
    return int(majority_vote(np.asarray(votes)[None, :])[0])


class SlidingDecision:
    """Per-flow last-N majority decision window.

    Parameters
    ----------
    window : int
        Number of recent aggregated predictions considered (paper: 3).
    emit_partial : bool
        If True, emit a majority decision even before the window fills
        (used by the window-size ablation); the paper's mechanism waits.
    """

    def __init__(self, window: int = 3, emit_partial: bool = False) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1: {window}")
        self.window = int(window)
        self.emit_partial = bool(emit_partial)
        self._history: Dict[tuple, deque] = {}
        self.decisions_emitted = 0
        self.waiting = 0

    def push(self, key: tuple, label: int) -> Optional[int]:
        """Record one aggregated prediction; return the flow decision or
        ``None`` while the window is still filling."""
        hist = self._history.get(key)
        if hist is None:
            hist = deque(maxlen=self.window)
            self._history[key] = hist
        hist.append(int(label))
        if len(hist) < self.window and not self.emit_partial:
            self.waiting += 1
            return None
        self.decisions_emitted += 1
        ones = sum(hist)
        return 1 if 2 * ones >= len(hist) else 0

    def forget(self, key: tuple) -> None:
        """Drop a flow's history (eviction hook)."""
        self._history.pop(key, None)

    # ------------------------------------------------------------------
    # checkpoint/restore
    # ------------------------------------------------------------------
    def state_snapshot(self) -> dict:
        """Window contents + counters as a plain picklable dict."""
        return {
            "history": [(k, list(h)) for k, h in self._history.items()],
            "decisions_emitted": self.decisions_emitted,
            "waiting": self.waiting,
        }

    def state_restore(self, state: dict) -> None:
        """Rebuild the per-flow windows captured by
        :meth:`state_snapshot` (deques get this instance's ``maxlen``,
        so the restoring process must be configured with the same
        window size)."""
        self._history = {
            k: deque(labels, maxlen=self.window)
            for k, labels in state["history"]
        }
        self.decisions_emitted = int(state["decisions_emitted"])
        self.waiting = int(state["waiting"])

    def __len__(self) -> int:
        return len(self._history)
