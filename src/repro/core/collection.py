"""INT Data Collection module (Fig 2, module 1).

Reads from the INT collector — telemetry header, metadata, and IP header
information (§III-1) — and forwards the per-packet fields the Data
Processor needs (step ②).  Can run as a live subscriber on an
:class:`~repro.int_telemetry.collector.IntCollector` or replay an
already-captured record array in order (the mode the testbed experiment
uses so wall-clock latency measures only the detection pipeline).

An sFlow-fed variant implements the same interface so the full mechanism
can be driven from sampled data for the comparison experiments.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.features.batch import group_by_flow
from repro.features.keys import canonical_flow_key, canonical_key_arrays
from repro.int_telemetry.collector import IntCollector
from repro.int_telemetry.report import TelemetryReport

from .processor import DataProcessor

__all__ = ["IntDataCollection", "SFlowDataCollection"]


class IntDataCollection:
    """Bridges INT telemetry reports into the Data Processor."""

    def __init__(self, processor: DataProcessor) -> None:
        self.processor = processor
        self.reports_consumed = 0

    def state_snapshot(self) -> dict:
        return {"reports_consumed": self.reports_consumed}

    def state_restore(self, state: dict) -> None:
        self.reports_consumed = int(state["reports_consumed"])

    # -- live mode -------------------------------------------------------
    def subscribe(self, collector: IntCollector) -> None:
        """Attach as the collector's live subscriber."""
        collector.subscriber = self.on_report

    def on_report(self, report: TelemetryReport) -> None:
        key = canonical_flow_key(
            report.src_ip,
            report.dst_ip,
            report.src_port,
            report.dst_port,
            report.protocol,
        )
        self.processor.ingest_packet(
            key,
            ts_sim_ns=report.ts_report,
            ingress_ts32=report.ingress_ts,
            length=report.length,
            protocol=report.protocol,
            queue_occupancy=report.queue_occupancy,
            hop_latency_ns=report.hop_latency_ns,
        )
        self.reports_consumed += 1

    # -- replay mode ------------------------------------------------------
    def feed_record(self, row: np.void) -> None:
        """Consume one REPORT_DTYPE row (offline-stream mode)."""
        key = canonical_flow_key(
            int(row["src_ip"]),
            int(row["dst_ip"]),
            int(row["src_port"]),
            int(row["dst_port"]),
            int(row["protocol"]),
        )
        self.processor.ingest_packet(
            key,
            ts_sim_ns=int(row["ts_report"]),
            ingress_ts32=int(row["ingress_ts"]),
            length=float(row["length"]),
            protocol=int(row["protocol"]),
            queue_occupancy=float(row["queue_occupancy"]),
            hop_latency_ns=float(row["hop_latency"]),
        )
        self.reports_consumed += 1

    def feed_batch(
        self, records: np.ndarray, seqs: Optional[np.ndarray] = None
    ) -> None:
        """Consume a REPORT_DTYPE slice through the vectorized ingest
        path (one grouping pass per slice instead of per-packet calls).

        ``seqs`` carries coordinator-assigned global sequence numbers in
        sharded runs; omitted, the processor numbers records itself.
        """
        n = records.shape[0]
        if n == 0:
            return
        batch = group_by_flow(*canonical_key_arrays(records))
        self.processor.ingest_batch(
            batch,
            ts_sim_ns=records["ts_report"].astype(np.int64),
            ingress_ts32=records["ingress_ts"].astype(np.int64),
            length=records["length"].astype(np.float64),
            protocol=records["protocol"].astype(np.int64),
            queue_occupancy=records["queue_occupancy"].astype(np.float64),
            hop_latency_ns=records["hop_latency"].astype(np.float64),
            seqs=seqs,
        )
        self.reports_consumed += n


class SFlowDataCollection:
    """Same bridge, fed from sFlow samples (no queue metadata)."""

    def __init__(self, processor: DataProcessor) -> None:
        self.processor = processor
        self.samples_consumed = 0

    def state_snapshot(self) -> dict:
        return {"samples_consumed": self.samples_consumed}

    def state_restore(self, state: dict) -> None:
        self.samples_consumed = int(state["samples_consumed"])

    def feed_record(self, row: np.void) -> None:
        """Consume one SAMPLE_DTYPE row."""
        key = canonical_flow_key(
            int(row["src_ip"]),
            int(row["dst_ip"]),
            int(row["src_port"]),
            int(row["dst_port"]),
            int(row["protocol"]),
        )
        ts = int(row["ts_sample"])
        self.processor.ingest_packet(
            key,
            ts_sim_ns=int(row["ts_collector"]),
            ingress_ts32=ts % (2**32),
            length=float(row["length"]),
            protocol=int(row["protocol"]),
        )
        self.samples_consumed += 1

    def feed_batch(
        self, records: np.ndarray, seqs: Optional[np.ndarray] = None
    ) -> None:
        """Consume a SAMPLE_DTYPE slice through the vectorized ingest
        path (queue metadata stays zero, as in the scalar path)."""
        n = records.shape[0]
        if n == 0:
            return
        batch = group_by_flow(*canonical_key_arrays(records))
        self.processor.ingest_batch(
            batch,
            ts_sim_ns=records["ts_collector"].astype(np.int64),
            ingress_ts32=records["ts_sample"].astype(np.int64) % (2**32),
            length=records["length"].astype(np.float64),
            protocol=records["protocol"].astype(np.int64),
            seqs=seqs,
        )
        self.samples_consumed += n
