"""Data Processor module (Fig 2, module 2).

Receives packet-level INT data from the collection module (step ②),
maintains the per-flow records in the flow table, and registers each
update with the database (step ③).  On the return path it receives the
per-model predictions from the CentralServer (step ⑦), aggregates them
into one label, pushes the label through the per-flow sliding decision
window, and stores the result with its prediction latency (step ⑧).
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.features.batch import FlowBatch
from repro.features.flow_record import FEATURE_ORDER, FlowRecord
from repro.features.keys import key_hash_of_key
from repro.sketch import SketchGate

from .database import FlowDatabase, PredictionEntry
from .ensemble import SlidingDecision, aggregate_votes

__all__ = ["DataProcessor"]


class DataProcessor:
    """Feature maintenance + prediction aggregation.

    Parameters
    ----------
    database : FlowDatabase
        Shared store (owns the flow table).
    feature_names : sequence of str
        Schema order for feature vectors sent to prediction.
    decision_window : int
        Size of the last-N sliding window (paper: 3).
    emit_partial : bool
        Forwarded to :class:`SlidingDecision` (ablation hook).
    clock : callable() -> int, optional
        Wall-clock source in ns; defaults to
        :func:`time.perf_counter_ns`.  Injectable for deterministic
        tests.
    gate : SketchGate, optional
        Sketch admission gate.  When set, every packet still updates
        the sketch, but only flows the gate admits (resident or past
        the heavy-hitter threshold) reach the exact flow table; the
        rest aggregate into the gate's residual stats.  ``None``
        preserves the ungated exact path bit-for-bit.
    """

    def __init__(
        self,
        database: FlowDatabase,
        feature_names: Sequence[str],
        decision_window: int = 3,
        emit_partial: bool = False,
        clock=None,
        gate: Optional[SketchGate] = None,
    ) -> None:
        self.db = database
        self.gate = gate
        self.feature_names = list(feature_names)
        self.decision = SlidingDecision(decision_window, emit_partial=emit_partial)
        # repro: allow[DET002] injectable default; wall stamps are excluded from digests
        self.clock = clock if clock is not None else time.perf_counter_ns
        self.packets_processed = 0
        # Column selection for the batched feature-matrix fill; None
        # when the schema contains a name outside the canonical record
        # features (falls back to per-record feature_vector).
        try:
            self._feature_sel: Optional[np.ndarray] = np.asarray(
                [FEATURE_ORDER.index(n) for n in self.feature_names], dtype=np.int64
            )
        except ValueError:
            self._feature_sel = None

    # ------------------------------------------------------------------
    # step ② — packet data in
    # ------------------------------------------------------------------
    def ingest_packet(
        self,
        key: tuple,
        ts_sim_ns: int,
        ingress_ts32: int,
        length: float,
        protocol: int,
        queue_occupancy: float = 0.0,
        hop_latency_ns: float = 0.0,
        seq: Optional[int] = None,
    ) -> Optional[FlowRecord]:
        """Fold one packet into its flow record and register the update.

        ``seq`` is the packet's delivered-stream sequence number; when
        omitted it defaults to this processor's running packet count,
        which *is* the delivered index in single-process runs.  Shard
        workers pass the coordinator-assigned global value instead.

        With a sketch ``gate``, a packet whose flow is neither resident
        nor promoted consumes its sequence number but creates no record
        (returns ``None``); its volume lands in the gate's residual
        stats.  Scalar gating treats each packet as its own admission
        slice — see DESIGN.md §15 for how that differs from batched
        slice-granular gating.
        """
        if self.gate is not None:
            admitted = self.gate.admit_one(
                key_hash_of_key(key),
                int(length),
                key in self.db.flows,
                int(key[0]),
            )
            if not admitted:
                self.packets_processed += 1
                return None
        wall = self.clock()
        if seq is None:
            seq = self.packets_processed
        rec = self.db.flows.update(
            key, ts_sim_ns, ingress_ts32, length, protocol,
            queue_occupancy, hop_latency_ns,
        )
        self.db.register_update(key, ts_sim_ns, wall, seq)
        self.packets_processed += 1
        return rec

    def ingest_batch(
        self,
        batch: FlowBatch,
        ts_sim_ns: np.ndarray,
        ingress_ts32: np.ndarray,
        length: np.ndarray,
        protocol: np.ndarray,
        queue_occupancy: Optional[np.ndarray] = None,
        hop_latency_ns: Optional[np.ndarray] = None,
        seqs: Optional[np.ndarray] = None,
    ) -> int:
        """Batched :meth:`ingest_packet`: fold a grouped slice of
        records into the flow table and register every update.

        The wall clock is still read once per record, in record order,
        so registration stamps — and therefore measured prediction
        latencies — are identical to the scalar path under any injected
        deterministic clock.  ``seqs`` overrides the per-record sequence
        numbers (shard workers pass global values); the default matches
        the scalar path's running count.

        With a sketch ``gate``, the whole slice folds into the sketch
        first, then only admitted groups reach the flow table — via
        :meth:`FlowBatch.subset`, so the admitted sub-batch behaves
        exactly like a batch that never contained the rejected records.
        Rejected packets still consume their sequence numbers (the
        delivered-stream numbering is gate-independent) and count into
        ``packets_processed``.
        """
        n = batch.n
        if n == 0:
            return 0
        if seqs is None:
            seqs = np.arange(self.packets_processed, self.packets_processed + n)
        if self.gate is not None:
            flows = self.db.flows
            pkts = batch.counts
            len_sorted = np.asarray(length, dtype=np.float64)[batch.order]
            byts = np.add.reduceat(len_sorted, batch.starts).astype(np.int64)
            resident = np.fromiter(
                (k in flows for k in batch.keys), dtype=bool, count=batch.n_groups
            )
            admit = self.gate.admit_slice(
                batch.key_hash, pkts, byts, resident, batch.group_ip_a
            )
            if not admit.all():
                sub, rec_mask = batch.subset(admit)
                clock = self.clock
                wall = [clock() for _ in range(sub.n)]
                if sub.n:
                    qo = None if queue_occupancy is None else np.asarray(
                        queue_occupancy
                    )[rec_mask]
                    hl = None if hop_latency_ns is None else np.asarray(
                        hop_latency_ns
                    )[rec_mask]
                    self.db.flows.update_batch(
                        sub,
                        np.asarray(ts_sim_ns)[rec_mask],
                        np.asarray(ingress_ts32)[rec_mask],
                        np.asarray(length)[rec_mask],
                        np.asarray(protocol)[rec_mask],
                        qo,
                        hl,
                    )
                    self.db.register_update_batch(
                        sub,
                        np.asarray(ts_sim_ns)[rec_mask],
                        wall,
                        np.asarray(seqs)[rec_mask],
                    )
                self.packets_processed += n
                return n
        clock = self.clock
        wall = [clock() for _ in range(n)]
        self.db.flows.update_batch(
            batch, ts_sim_ns, ingress_ts32, length, protocol,
            queue_occupancy, hop_latency_ns,
        )
        self.db.register_update_batch(batch, ts_sim_ns, wall, seqs)
        self.packets_processed += n
        return n

    def features_for(self, key: tuple) -> Optional[np.ndarray]:
        """Current feature vector of a flow (None if evicted)."""
        rec = self.db.flows.get(key)
        if rec is None:
            return None
        return rec.feature_vector(self.feature_names)

    def features_matrix(self, keys: Sequence[tuple]) -> Tuple[np.ndarray, np.ndarray]:
        """Feature matrix for a polled batch of flow keys.

        Returns ``(X, valid)`` where ``X`` has one row per key in
        ``keys`` order and ``valid`` flags keys whose flow still exists
        (evicted flows leave garbage rows, masked by ``valid``).  Row
        values are bit-identical to :meth:`features_for` — the fill uses
        the same per-record arithmetic, just without a dict and an
        ndarray allocation per update.
        """
        n = len(keys)
        valid = np.ones(n, dtype=bool)
        flows = self.db.flows
        sel = self._feature_sel
        if sel is None:
            X = np.empty((n, len(self.feature_names)))
            for i, key in enumerate(keys):
                rec = flows.get(key)
                if rec is None:
                    valid[i] = False
                else:
                    X[i] = rec.feature_vector(self.feature_names)
            return X, valid
        full = np.empty((n, len(FEATURE_ORDER)))
        for i, key in enumerate(keys):
            rec = flows.get(key)
            if rec is None:
                valid[i] = False
            else:
                full[i] = rec.feature_row()
        return full[:, sel], valid

    # ------------------------------------------------------------------
    # checkpoint/restore
    # ------------------------------------------------------------------
    def state_snapshot(self) -> dict:
        """Processor-owned mutable state (the database snapshots its own
        — including the shared flow table — separately)."""
        return {
            "decision": self.decision.state_snapshot(),
            "packets_processed": self.packets_processed,
        }

    def state_restore(self, state: dict) -> None:
        self.decision.state_restore(state["decision"])
        self.packets_processed = int(state["packets_processed"])

    # ------------------------------------------------------------------
    # steps ⑦/⑧ — predictions back
    # ------------------------------------------------------------------
    def receive_predictions(
        self,
        key: tuple,
        ts_sim_ns: int,
        wall_registered_ns: int,
        votes: np.ndarray,
        seq: int = -1,
        epoch: int = 0,
    ) -> PredictionEntry:
        """Aggregate model votes, apply the sliding window, store.

        ``epoch`` is the model-panel generation that produced ``votes``
        (stamped into the entry so hot-swap atomicity is auditable)."""
        label = aggregate_votes(votes)
        final = self.decision.push(key, label)
        entry = PredictionEntry(
            key=key,
            ts_registered_ns=ts_sim_ns,
            wall_registered_ns=wall_registered_ns,
            wall_predicted_ns=self.clock(),
            label=label,
            votes=tuple(int(v) for v in votes),
            final_decision=final,
            seq=seq,
            epoch=epoch,
        )
        self.db.store_prediction(entry)
        return entry

    def receive_predictions_batch(
        self,
        updates: Sequence[Tuple[tuple, int, int, int]],
        votes: np.ndarray,
        epoch: int = 0,
    ) -> List[PredictionEntry]:
        """Batched :meth:`receive_predictions` for one dispatched cycle.

        ``votes`` is the ``(n_updates, n_active_models)`` 0/1 matrix
        from :meth:`~repro.core.prediction.PredictionModule.predict_batch`.
        Vote aggregation is vectorized across the batch and the per-vote
        ``tuple(int(v) ...)`` conversion is hoisted into one
        ``ndarray.tolist()`` call; the per-flow sliding windows are
        still pushed in update order, so decision sequences match the
        scalar path exactly.
        """
        votes = np.asarray(votes)
        # Row-wise aggregate_votes: majority with ties flagged as attack.
        labels = (votes.sum(axis=1) * 2 >= votes.shape[1]).astype(np.int64).tolist()
        vote_rows = votes.tolist()
        clock = self.clock
        push = self.decision.push
        store = self.db.store_prediction
        fast = PredictionEntry.fast
        entries: List[PredictionEntry] = []
        for (key, ts_sim, wall_reg, seq), label, row in zip(updates, labels, vote_rows):
            final = push(key, label)
            entry = fast(
                key, ts_sim, wall_reg, clock(), label, tuple(row), final, seq, epoch
            )
            store(entry)
            entries.append(entry)
        return entries
