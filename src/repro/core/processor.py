"""Data Processor module (Fig 2, module 2).

Receives packet-level INT data from the collection module (step ②),
maintains the per-flow records in the flow table, and registers each
update with the database (step ③).  On the return path it receives the
per-model predictions from the CentralServer (step ⑦), aggregates them
into one label, pushes the label through the per-flow sliding decision
window, and stores the result with its prediction latency (step ⑧).
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from repro.features.flow_record import FlowRecord

from .database import FlowDatabase, PredictionEntry
from .ensemble import SlidingDecision, aggregate_votes

__all__ = ["DataProcessor"]


class DataProcessor:
    """Feature maintenance + prediction aggregation.

    Parameters
    ----------
    database : FlowDatabase
        Shared store (owns the flow table).
    feature_names : sequence of str
        Schema order for feature vectors sent to prediction.
    decision_window : int
        Size of the last-N sliding window (paper: 3).
    emit_partial : bool
        Forwarded to :class:`SlidingDecision` (ablation hook).
    clock : callable() -> int, optional
        Wall-clock source in ns; defaults to
        :func:`time.perf_counter_ns`.  Injectable for deterministic
        tests.
    """

    def __init__(
        self,
        database: FlowDatabase,
        feature_names: Sequence[str],
        decision_window: int = 3,
        emit_partial: bool = False,
        clock=None,
    ) -> None:
        self.db = database
        self.feature_names = list(feature_names)
        self.decision = SlidingDecision(decision_window, emit_partial=emit_partial)
        self.clock = clock if clock is not None else time.perf_counter_ns
        self.packets_processed = 0

    # ------------------------------------------------------------------
    # step ② — packet data in
    # ------------------------------------------------------------------
    def ingest_packet(
        self,
        key: tuple,
        ts_sim_ns: int,
        ingress_ts32: int,
        length: float,
        protocol: int,
        queue_occupancy: float = 0.0,
        hop_latency_ns: float = 0.0,
    ) -> FlowRecord:
        """Fold one packet into its flow record and register the update."""
        wall = self.clock()
        rec = self.db.flows.update(
            key, ts_sim_ns, ingress_ts32, length, protocol,
            queue_occupancy, hop_latency_ns,
        )
        self.db.register_update(key, ts_sim_ns, wall)
        self.packets_processed += 1
        return rec

    def features_for(self, key: tuple) -> Optional[np.ndarray]:
        """Current feature vector of a flow (None if evicted)."""
        rec = self.db.flows.get(key)
        if rec is None:
            return None
        return rec.feature_vector(self.feature_names)

    # ------------------------------------------------------------------
    # steps ⑦/⑧ — predictions back
    # ------------------------------------------------------------------
    def receive_predictions(
        self,
        key: tuple,
        ts_sim_ns: int,
        wall_registered_ns: int,
        votes: np.ndarray,
    ) -> PredictionEntry:
        """Aggregate model votes, apply the sliding window, store."""
        label = aggregate_votes(votes)
        final = self.decision.push(key, label)
        entry = PredictionEntry(
            key=key,
            ts_registered_ns=ts_sim_ns,
            wall_registered_ns=wall_registered_ns,
            wall_predicted_ns=self.clock(),
            label=label,
            votes=tuple(int(v) for v in votes),
            final_decision=final,
        )
        self.db.store_prediction(entry)
        return entry
