"""The assembled automated DDoS detection mechanism (Fig 2).

:class:`AutomatedDDoSDetector` wires the four modules around the shared
database and provides the two execution modes used by the experiments:

* :meth:`run_stream` — the testbed mode (§IV-C): telemetry records are
  consumed in capture order, interleaving packet registration with
  CentralServer cycles.  Wall-clock prediction latency is measured
  exactly as the paper defines it (prediction time − registration time),
  and backlog dynamics reproduce the Table VI latency profile.
* :meth:`attach_live` — fully-live mode: subscribes to an
  :class:`~repro.int_telemetry.collector.IntCollector` while a discrete-
  event simulation is running; useful for end-to-end demos.

Scoring helpers convert the stored predictions + ground-truth labels
into the per-attack-type rows of Table VI.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence

import numpy as np

from repro.features.flow_table import FlowTable
from repro.features.keys import key_hash_of_key
from repro.int_telemetry.collector import IntCollector
from repro.resilience.chaos import ChaosSchedule, FaultInjector
from repro.resilience.degradation import ModuleHealth, Watchdog
from repro.sketch import SketchConfig
from repro.traffic.trace import AttackType

from .central import CentralServer
from .collection import IntDataCollection, SFlowDataCollection
from .database import FlowDatabase
from .latency import LatencyTracker
from .prediction import PredictionModule
from .processor import DataProcessor
from .training import TrainedBundle

__all__ = ["AutomatedDDoSDetector", "score_by_type"]


class AutomatedDDoSDetector:
    """End-to-end wiring of the Fig 2 modules.

    Parameters
    ----------
    bundle : TrainedBundle
        Pre-trained models + scaler (the Prediction module's payload).
    source : {"int", "sflow"}
        Which telemetry feed drives the collection module.
    decision_window : int
        Sliding decision window size (paper: 3).
    emit_partial : bool
        Emit decisions before the window fills.  Default True: short
        flows (scan probes, unanswered flood SYNs) see only one or two
        updates ever, and Table VI's predicted counts require them to be
        decided; strictly waiting for three predictions (the paper's
        §IV-C4 wording) is available as the window ablation.
    skip_new_flows : bool
        Withhold predictions for one-packet flows (the literal §III-3
        reading; see FlowDatabase.poll_updates).
    max_flows : int, optional
        Flow-table cap (flood pressure relief).
    wrap_aware : bool
        Timestamp wrap handling in the flow records (ablation hook).
    fast_poll : bool
        Indexed database poll instead of the paper-faithful scan.
    clock : callable() -> int, optional
        Wall-clock override for deterministic tests.
    chaos : ChaosSchedule, optional
        Fault-injection schedule; when given (and not a no-op) the
        telemetry feed is wrapped in a seeded
        :class:`~repro.resilience.chaos.FaultInjector`.
    chaos_seed : int | numpy Generator, optional
        RNG for the fault injector (reproducible chaos runs).
    cycle_deadline_ns : int, optional
        Per-cycle wall-clock budget for the CentralServer; overruns shed
        backlog instead of stretching the cycle.
    watchdog : Watchdog, optional
        Module-health registry; created (with no sinks) if omitted so
        health state is always tracked.  Pass your own to attach
        control-plane sinks.
    batched : bool
        Run the vectorized hot path: slice-wise telemetry ingest and
        one batch prediction per CentralServer cycle.  Output is
        bit-identical to the scalar path (see the batch-equivalence
        suite); only throughput differs.
    sketch : SketchConfig, optional
        Enable the sketch admission gate in front of the flow table
        (see :mod:`repro.sketch.gate`): every packet updates a seeded
        count-min sketch, only promoted heavy hitters get exact
        FlowRecords, the rest aggregate into per-prefix residuals.
        ``None`` (default) keeps the exact ungated path bit-for-bit.
    """

    def __init__(
        self,
        bundle: TrainedBundle,
        source: str = "int",
        decision_window: int = 3,
        emit_partial: bool = True,
        skip_new_flows: bool = False,
        max_flows: Optional[int] = None,
        wrap_aware: bool = True,
        fast_poll: bool = False,
        clock=None,
        chaos: Optional[ChaosSchedule] = None,
        chaos_seed=None,
        cycle_deadline_ns: Optional[int] = None,
        watchdog: Optional[Watchdog] = None,
        batched: bool = False,
        sketch: Optional[SketchConfig] = None,
    ) -> None:
        self.bundle = bundle
        # Construction recipe for shard workers: everything needed to
        # rebuild an equivalent detector in another process.  The clock
        # is deliberately excluded (injected clocks are closures, and a
        # worker's wall stamps are per-process anyway), as is chaos —
        # the sharded coordinator injects faults on the unified stream.
        self._worker_config = dict(
            source=source,
            decision_window=decision_window,
            emit_partial=emit_partial,
            skip_new_flows=skip_new_flows,
            max_flows=max_flows,
            wrap_aware=wrap_aware,
            fast_poll=fast_poll,
            cycle_deadline_ns=cycle_deadline_ns,
            sketch=sketch,
        )
        #: Per-worker stats dicts of the last sharded run (None before).
        self.shard_stats: Optional[list] = None
        #: Supervision counters of the last sharded run (None before):
        #: worker deaths/respawns, checkpoints, lossy recoveries,
        #: restore latencies.  See Supervisor.stats().
        self.supervision_stats: Optional[Dict[str, object]] = None
        #: Attached mitigation subsystem (duck-typed; set by
        #: MitigationController.attach_to — core stays below the
        #: mitigation layer and never imports it).  When present it is
        #: checkpointed with the detector, cloned into shard workers,
        #: given the end-of-run episode pass, and surfaced in stats().
        self.mitigation: Optional[Any] = None
        #: Attached lifecycle manager (duck-typed; set by
        #: LifecycleManager.attach_to — same layering rule as
        #: mitigation).  When present, the batched run loop hands it
        #: every delivered CYCLE slice for drift checks, and its drift/
        #: reservoir/swap state rides the detector checkpoint.
        self.lifecycle: Optional[Any] = None
        flow_table = FlowTable(max_flows=max_flows, wrap_aware=wrap_aware)
        self.db = FlowDatabase(
            flow_table, fast_poll=fast_poll, skip_new_flows=skip_new_flows
        )
        self.watchdog = watchdog if watchdog is not None else Watchdog()
        #: Sketch admission gate (None = exact ungated path).
        self.sketch_gate = sketch.build() if sketch is not None else None
        self.processor = DataProcessor(
            self.db,
            bundle.feature_names,
            decision_window=decision_window,
            emit_partial=emit_partial,
            clock=clock,
            gate=self.sketch_gate,
        )
        self.prediction = PredictionModule(
            bundle.scaler,
            bundle.models,
            bundle.feature_names,
            on_quarantine=self._on_quarantine,
            on_reinstate=self._on_reinstate,
        )
        self.central = CentralServer(
            self.db,
            self.processor,
            self.prediction,
            deadline_ns=cycle_deadline_ns,
            watchdog=self.watchdog,
            clock=clock,
            batched=batched,
        )
        if source == "int":
            inner = IntDataCollection(self.processor)
        elif source == "sflow":
            inner = SFlowDataCollection(self.processor)
        else:
            raise ValueError(f"unknown telemetry source: {source!r}")
        self._collection_inner = inner
        if chaos is not None and not chaos.is_noop:
            self.fault_injector: Optional[FaultInjector] = FaultInjector(
                chaos, inner=inner, seed=chaos_seed
            )
            self.collection = self.fault_injector
        else:
            self.fault_injector = None
            self.collection = inner
        self.source = source

    def _on_quarantine(self, name: str, reason: str, n_active: int) -> None:
        state = ModuleHealth.DEGRADED if n_active else ModuleHealth.FAILED
        self.watchdog.report(
            "prediction", state,
            f"model {name!r} quarantined ({reason}); {n_active} member(s) left",
        )

    def _on_reinstate(self, name: str, n_active: int) -> None:
        """Recovery-side twin of :meth:`_on_quarantine`: the control
        plane sees HEALTHY when the full panel is back, DEGRADED while
        some members remain quarantined."""
        if self.prediction.quarantined:
            self.watchdog.degraded(
                "prediction",
                f"model {name!r} reinstated; "
                f"{len(self.prediction.quarantined)} still quarantined",
            )
        else:
            self.watchdog.healthy(
                "prediction",
                f"model {name!r} reinstated; full panel restored "
                f"({n_active} member(s))",
            )

    # ------------------------------------------------------------------
    # execution modes
    # ------------------------------------------------------------------
    def worker_config(self) -> Dict[str, object]:
        """Picklable construction recipe for shard workers."""
        return dict(self._worker_config)

    def run_stream(
        self,
        records: np.ndarray,
        poll_every: int = 64,
        cycle_budget: int = 128,
        batched: Optional[bool] = None,
        shards: Optional[int] = None,
        checkpoint_every: int = 16,
        replay_buffer_records: Optional[int] = None,
        heartbeat_timeout_s: float = 30.0,
        process_chaos=None,
        max_respawns: int = 3,
        ring_capacity: Optional[int] = None,
    ) -> FlowDatabase:
        """Consume a telemetry record array in capture order.

        Every ``poll_every`` registrations, one CentralServer cycle runs
        with ``cycle_budget`` updates of capacity; a final drain flushes
        the backlog.  Returns the database holding all predictions.

        ``batched`` overrides the construction-time mode for this run.
        The batched mode feeds ``poll_every``-sized record slices
        through the vectorized ingest and cycles after each full slice —
        the same cadence as the scalar per-record loop, so poll
        boundaries (and everything downstream of them) line up exactly.

        ``shards=N`` switches to the shard-parallel mode: telemetry is
        partitioned by canonical-flow hash across ``N`` worker
        processes (each running the batched pipeline over a shared-
        memory ring) and the merged prediction log — result-identical
        to ``batched=True`` in the no-backlog regime, see
        :mod:`repro.core.sharding` — lands in this detector's database.
        The sharded mode is supervised: workers are checkpointed every
        ``checkpoint_every`` cycles and crashed/hung workers (including
        any scheduled by a ``process_chaos`` kill plan) are respawned
        from the last checkpoint and replayed from the coordinator's
        bounded replay buffer (``replay_buffer_records`` slots).
        ``ring_capacity`` sizes each worker's ring in *records* (the
        byte ring is derived from it; frames larger than the ring
        stream through, so small values trade throughput, not
        correctness).
        """
        if poll_every < 1 or cycle_budget < 1:
            raise ValueError("poll_every and cycle_budget must be >= 1")
        if shards is not None:
            from .sharding import run_sharded

            return run_sharded(
                self,
                records,
                n_shards=shards,
                poll_every=poll_every,
                cycle_budget=cycle_budget,
                checkpoint_every=checkpoint_every,
                replay_buffer_records=replay_buffer_records,
                heartbeat_timeout_s=heartbeat_timeout_s,
                process_chaos=process_chaos,
                max_respawns=max_respawns,
                ring_capacity=ring_capacity,
            )
        if batched is not None:
            self.central.batched = bool(batched)
        if self.lifecycle is not None and not self.central.batched:
            raise ValueError(
                "the lifecycle manager requires the batched run mode "
                "(drift windows are cut at CYCLE slice boundaries)"
            )
        if self.central.batched:
            # With a lifecycle manager the loop needs the *delivered*
            # (post-chaos) records of each slice: faults are applied on
            # the coordinator side via transform_batch — the exact same
            # RNG walk feed_batch performs — and the delivered slice is
            # both ingested and handed to the drift monitor.  This is
            # what the sharded coordinator does too, so drift windows
            # (and any swap they trigger) are identical for any worker
            # count.
            lifecycle_transform = (
                self.lifecycle is not None and self.fault_injector is not None
            )
            for start in range(0, records.shape[0], poll_every):
                chunk = records[start : start + poll_every]
                if lifecycle_transform:
                    assert self.fault_injector is not None
                    delivered = self.fault_injector.transform_batch(chunk)
                    self._collection_inner.feed_batch(delivered)
                else:
                    delivered = chunk
                    self.collection.feed_batch(chunk)
                if chunk.shape[0] == poll_every:
                    if self.sketch_gate is not None:
                        self.sketch_gate.end_window()
                    self.central.cycle(max_updates=cycle_budget)
                    if self.mitigation is not None:
                        self.mitigation.on_cycle()
                    if self.lifecycle is not None:
                        self.lifecycle.on_slice(delivered)
            if self.fault_injector is not None:
                if lifecycle_transform:
                    tail = self.fault_injector.transform_flush()
                    if tail.shape[0]:
                        self._collection_inner.feed_batch(tail)
                else:
                    self.fault_injector.flush(batched=True)
            self.central.drain(batch=cycle_budget)
            if self.mitigation is not None:
                self.mitigation.finish_run(self.db)
            return self.db
        for i in range(records.shape[0]):
            self.collection.feed_record(records[i])
            if (i + 1) % poll_every == 0:
                if self.sketch_gate is not None:
                    self.sketch_gate.end_window()
                self.central.cycle(max_updates=cycle_budget)
                if self.mitigation is not None:
                    self.mitigation.on_cycle()
        if self.fault_injector is not None:
            self.fault_injector.flush()  # release held (reordered) reports
        self.central.drain(batch=cycle_budget)
        if self.mitigation is not None:
            self.mitigation.finish_run(self.db)
        return self.db

    def attach_live(self, collector: IntCollector) -> None:
        """Subscribe the collection module to a live INT collector."""
        if self.source != "int":
            raise RuntimeError("live attachment requires the INT source")
        if self.fault_injector is not None:
            raise RuntimeError(
                "chaos injection supports replay mode only; attach the "
                "FaultInjector to a record stream instead"
            )
        self._collection_inner.subscribe(collector)

    def live_cycle(self, budget: int = 128) -> int:
        """One CentralServer round (callers interleave with sim slices)."""
        if self.sketch_gate is not None:
            self.sketch_gate.end_window()
        done = self.central.cycle(max_updates=budget)
        if self.mitigation is not None:
            self.mitigation.on_cycle()
        return done

    def finish(self, budget: int = 512) -> FlowDatabase:
        """Drain remaining updates and return the database."""
        if self.fault_injector is not None:
            self.fault_injector.flush()
        self.central.drain(batch=budget)
        if self.mitigation is not None:
            self.mitigation.finish_run(self.db)
        return self.db

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """One flat scorecard of the run: throughput, shedding, health.

        Surfaces every loss path that used to be invisible — evicted
        flows skipped between poll and dispatch, deadline-shed backlog,
        quarantined panel members, injected telemetry faults — alongside
        the ordinary throughput counters.
        """
        inner = self._collection_inner
        consumed = getattr(inner, "reports_consumed", None)
        if consumed is None:
            consumed = getattr(inner, "samples_consumed", 0)
        out: Dict[str, object] = {
            "reports_consumed": consumed,
            "packets_processed": self.processor.packets_processed,
            "updates_registered": self.db.updates_registered,
            "pending_updates": self.db.pending_updates,
            "predictions_stored": self.db.predictions_total,
            "flows_created": self.db.flows.created,
            "flows_evicted": self.db.flows.evicted,
            "predictions_served": self.prediction.predictions_served,
            "quarantined_models": dict(self.prediction.quarantined),
            "active_models": self.prediction.active_model_names,
            "panel_epoch": self.prediction.panel_epoch,
            "health": self.watchdog.snapshot(),
            "overall_health": self.watchdog.worst.name,
        }
        out.update(self.central.stats())
        if self.fault_injector is not None:
            out["faults"] = self.fault_injector.stats.as_dict()
        if self.shard_stats is not None:
            out["shards"] = list(self.shard_stats)
        if self.supervision_stats is not None:
            out["supervision"] = dict(self.supervision_stats)
        if self.mitigation is not None:
            out["mitigation"] = self.mitigation.stats()
        if self.lifecycle is not None:
            out["lifecycle"] = self.lifecycle.stats()
        if self.sketch_gate is not None:
            out["sketch"] = self._sketch_stats()
        return out

    def _sketch_stats(self) -> Dict[str, object]:
        """Gate scorecard + estimated-vs-exact error over a bounded
        sample of resident flows.

        Every resident flow passed promotion (or predates the gate), so
        demotions — heavy hitters whose exact state was later dropped —
        are exactly the table's evictions + idle expiries.  The error
        sample compares the sketch's packet estimate against the exact
        ``n_packets`` for up to 512 resident flows: with conservative
        update the estimate can only overcount, so mean relative
        overestimate is the sketch-accuracy signal ops would watch.
        """
        assert self.sketch_gate is not None
        gate = self.sketch_gate
        out: Dict[str, object] = dict(gate.stats())
        flows = self.db.flows
        out["demotions"] = flows.evicted + flows.expired
        out["resident_flows"] = len(flows)
        err_sum = 0.0
        sampled = 0
        exact_le_est = 0
        for key, rec in flows.items():
            if sampled >= 512:
                break
            est_pkts, _ = gate.estimate_key(key_hash_of_key(key))
            if rec.n_packets > 0:
                err_sum += (est_pkts - rec.n_packets) / rec.n_packets
                exact_le_est += int(est_pkts >= rec.n_packets)
                sampled += 1
        out["error_sample_flows"] = sampled
        out["mean_relative_overestimate"] = (
            err_sum / sampled if sampled else 0.0
        )
        out["estimate_ge_exact_fraction"] = (
            exact_le_est / sampled if sampled else 1.0
        )
        return out


def score_by_type(
    db: FlowDatabase,
    truth: Callable[[tuple], tuple],
    percentile_for: Optional[Dict[str, float]] = None,
) -> Dict[str, dict]:
    """Table VI rows from a run's stored predictions.

    Parameters
    ----------
    db : FlowDatabase
        Result of a detector run.
    truth : callable(flow_key) -> (label, AttackType)
        Ground-truth oracle (dataset builders provide one).
    percentile_for : dict, optional
        Per-category percentile to report instead of the max latency
        (the paper uses ``{"Benign": 99.0}``).

    Returns
    -------
    dict
        ``{type_name: {"accuracy", "misclassified", "predicted",
        "avg_time_s", "max_time_s"}}`` — only updates that produced a
        final (windowed) decision are scored, matching how the paper
        counts "predicted packets".
    """
    percentile_for = percentile_for or {}
    latency = LatencyTracker()
    correct: Dict[str, int] = {}
    total: Dict[str, int] = {}
    for entry in db.predictions:
        label_true, attack_type = truth(entry.key)
        name = AttackType(attack_type).display
        latency.record(name, entry.latency_ns)
        if entry.final_decision is None:
            continue
        total[name] = total.get(name, 0) + 1
        if entry.final_decision == int(label_true):
            correct[name] = correct.get(name, 0) + 1

    out: Dict[str, dict] = {}
    for name in sorted(total):
        n = total[name]
        good = correct.get(name, 0)
        stats = latency.summary(name, percentile_max=percentile_for.get(name))
        out[name] = {
            "accuracy": good / n,
            "misclassified": n - good,
            "predicted": n,
            "avg_time_s": stats["avg_s"],
            "max_time_s": stats["max_s"],
        }
    return out
