"""CentralServer module (Fig 2, module 3).

The coordinator: polls the database for updated records (step ④, skipping
brand-new Flow IDs), dispatches their feature vectors to the Prediction
module (step ⑤), retrieves the per-model predictions (step ⑥), and hands
them to the Data Processor for aggregation (step ⑦).

One :meth:`cycle` is one poll-predict-return round; the live mechanism
interleaves cycles with packet ingestion, so a cycle's budget
(``max_updates``) is what throttles prediction throughput — when arrival
rate exceeds it, the pending backlog (and therefore prediction latency)
grows, which is how the paper's Table VI latency profile arises.
"""

from __future__ import annotations

from typing import Optional

from .database import FlowDatabase
from .prediction import PredictionModule
from .processor import DataProcessor

__all__ = ["CentralServer"]


class CentralServer:
    """Poll → predict → return coordinator."""

    def __init__(
        self,
        database: FlowDatabase,
        processor: DataProcessor,
        prediction: PredictionModule,
    ) -> None:
        self.db = database
        self.processor = processor
        self.prediction = prediction
        self.cycles = 0
        self.updates_dispatched = 0

    def cycle(self, max_updates: Optional[int] = None) -> int:
        """Run one coordination round; returns updates processed."""
        self.cycles += 1
        updates = self.db.poll_updates(limit=max_updates)
        for key, ts_sim, wall_reg in updates:
            features = self.processor.features_for(key)
            if features is None:
                continue  # flow evicted between poll and dispatch
            votes = self.prediction.predict_one(features)
            self.processor.receive_predictions(key, ts_sim, wall_reg, votes)
            self.updates_dispatched += 1
        return len(updates)

    def drain(self, batch: int = 512, max_cycles: int = 1_000_000) -> int:
        """Run cycles until no more updates can be processed.

        Updates belonging to flows that never received a second packet
        (single-packet scan probes, most flood SYNs) are skipped by the
        poll per §III-3 and stay pending forever; the drain stops when a
        cycle makes no progress, not when the pending count hits zero.
        """
        total = 0
        for _ in range(max_cycles):
            done = self.cycle(max_updates=batch)
            total += done
            if done == 0:
                break
        return total
