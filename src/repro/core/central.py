"""CentralServer module (Fig 2, module 3).

The coordinator: polls the database for updated records (step ④, skipping
brand-new Flow IDs), dispatches their feature vectors to the Prediction
module (step ⑤), retrieves the per-model predictions (step ⑥), and hands
them to the Data Processor for aggregation (step ⑦).

One :meth:`cycle` is one poll-predict-return round; the live mechanism
interleaves cycles with packet ingestion, so a cycle's budget
(``max_updates``) is what throttles prediction throughput — when arrival
rate exceeds it, the pending backlog (and therefore prediction latency)
grows, which is how the paper's Table VI latency profile arises.

Production hardening beyond the paper:

* a **deadline budget** per cycle (``deadline_ns``): once a cycle has
  spent its wall-clock allowance, the rest of the polled batch is *shed*
  (dropped and counted, never silently requeued into an ever-growing
  backlog) and the watchdog marks the module DEGRADED;
* **retry with exponential backoff** around the database poll, so a
  transient store hiccup costs a few milliseconds instead of the
  mechanism;
* explicit counters (``skipped_evicted``, ``updates_shed``,
  ``poll_retries``) so shedding under flood pressure is visible in the
  mechanism's stats rather than an invisible ``continue``.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.resilience.degradation import Watchdog, retry_with_backoff

from .database import FlowDatabase
from .prediction import PredictionModule, PredictionUnavailableError
from .processor import DataProcessor

__all__ = ["CentralServer"]


class CentralServer:
    """Poll → predict → return coordinator.

    Parameters
    ----------
    database, processor, prediction :
        The Fig 2 modules this coordinator stitches together.
    deadline_ns : int, optional
        Per-cycle wall-clock budget; updates beyond it are shed.
        ``None`` (default) reproduces the paper's unbounded cycle.
    poll_attempts : int
        Total tries for a database poll before the cycle gives up
        (transient store failures are retried with exponential backoff).
    poll_backoff_s : float
        Base backoff delay between poll retries.
    watchdog : Watchdog, optional
        Health registry to notify on degradation/failure transitions.
    clock : callable() -> int, optional
        Wall-clock in ns for the deadline budget (injectable for
        deterministic tests); defaults to :func:`time.perf_counter_ns`.
    sleep : callable(seconds), optional
        Backoff sleep (injectable for tests); defaults to
        :func:`time.sleep`.
    """

    #: Updates per deadline check in the batched scatter loop.
    BATCH_SHED_CHUNK = 64

    def __init__(
        self,
        database: FlowDatabase,
        processor: DataProcessor,
        prediction: PredictionModule,
        deadline_ns: Optional[int] = None,
        poll_attempts: int = 3,
        poll_backoff_s: float = 0.005,
        watchdog: Optional[Watchdog] = None,
        clock: Optional[Callable[[], int]] = None,
        sleep: Optional[Callable[[float], None]] = None,
        batched: bool = False,
    ) -> None:
        if deadline_ns is not None and deadline_ns <= 0:
            raise ValueError(f"deadline_ns must be positive: {deadline_ns}")
        if poll_attempts < 1:
            raise ValueError(f"poll_attempts must be >= 1: {poll_attempts}")
        self.db = database
        self.processor = processor
        self.prediction = prediction
        self.deadline_ns = deadline_ns
        self.batched = bool(batched)
        self.poll_attempts = int(poll_attempts)
        self.poll_backoff_s = float(poll_backoff_s)
        self.watchdog = watchdog
        # repro: allow[DET002] injectable default; wall stamps are excluded from digests
        self.clock = clock if clock is not None else time.perf_counter_ns
        # repro: allow[DET002] injectable default; tests pass a no-op sleep
        self.sleep = sleep if sleep is not None else time.sleep
        self.cycles = 0
        self.updates_dispatched = 0
        self.skipped_evicted = 0
        self.updates_shed = 0
        self.deadline_hits = 0
        self.poll_retries = 0
        self.poll_failures = 0

    # ------------------------------------------------------------------
    def _poll(self, limit: Optional[int]) -> List[Tuple[tuple, int, int, int]]:
        """Database poll with bounded exponential-backoff retries."""

        def note_retry(attempt: int, exc: BaseException) -> None:
            self.poll_retries += 1
            if self.watchdog is not None:
                self.watchdog.degraded(
                    "database",
                    f"poll attempt {attempt} failed: "
                    f"{type(exc).__name__}: {exc}",
                )

        try:
            updates = retry_with_backoff(
                lambda: self.db.poll_updates(limit=limit),
                attempts=self.poll_attempts,
                base_delay_s=self.poll_backoff_s,
                sleep=self.sleep,
                on_retry=note_retry,
            )
        except Exception as exc:
            self.poll_failures += 1
            if self.watchdog is not None:
                self.watchdog.failed(
                    "database", f"poll failed after {self.poll_attempts} attempts: {exc}"
                )
            raise
        if self.watchdog is not None:
            self.watchdog.healthy("database")
        return updates

    # ------------------------------------------------------------------
    def cycle(
        self,
        max_updates: Optional[int] = None,
        deadline_ns: Optional[int] = None,
        batched: Optional[bool] = None,
    ) -> int:
        """Run one coordination round; returns updates polled.

        ``deadline_ns`` overrides the instance budget for this cycle;
        ``batched`` overrides the instance dispatch mode.  Batched
        dispatch materializes one feature matrix for the polled batch
        and calls every panel member once per cycle; the scalar mode
        predicts update-by-update (the paper-faithful loop).
        """
        self.cycles += 1
        budget = deadline_ns if deadline_ns is not None else self.deadline_ns
        started = self.clock() if budget is not None else 0
        updates = self._poll(max_updates)
        if batched if batched is not None else self.batched:
            return self._dispatch_batched(updates, budget, started)
        for i, (key, ts_sim, wall_reg, seq) in enumerate(updates):
            if budget is not None and self.clock() - started > budget:
                shed = len(updates) - i
                self.updates_shed += shed
                self.deadline_hits += 1
                if self.watchdog is not None:
                    self.watchdog.degraded(
                        "central",
                        f"cycle deadline {budget} ns exceeded; shed {shed} updates",
                    )
                return len(updates)
            features = self.processor.features_for(key)
            if features is None:
                # Flow evicted between poll and dispatch (flood-pressure
                # shedding); counted so the loss is visible in stats.
                self.skipped_evicted += 1
                continue
            try:
                votes = self.prediction.predict_one(features)
            except PredictionUnavailableError as exc:
                shed = len(updates) - i
                self.updates_shed += shed
                if self.watchdog is not None:
                    self.watchdog.failed("prediction", str(exc))
                return len(updates)
            self.processor.receive_predictions(
                key, ts_sim, wall_reg, votes, seq,
                epoch=self.prediction.panel_epoch,
            )
            self.updates_dispatched += 1
        if self.watchdog is not None and updates:
            self.watchdog.healthy("central")
        return len(updates)

    # ------------------------------------------------------------------
    def _dispatch_batched(self, updates, budget, started) -> int:
        """Batched step ⑤→⑦: one feature matrix, one ``predict_batch``
        per panel member, votes scattered back through the per-flow
        sliding windows in update order.

        Resilience semantics carry over from the scalar loop: evicted
        flows are skipped and counted, an all-quarantined panel sheds
        the batch, and the deadline budget sheds the un-scattered tail
        (checked every :data:`BATCH_SHED_CHUNK` updates — the batch
        prediction itself is all-or-nothing, so shedding granularity is
        coarser than the scalar loop's per-update check).
        """
        n = len(updates)
        if n == 0:
            return 0
        if budget is not None and self.clock() - started > budget:
            self.updates_shed += n
            self.deadline_hits += 1
            if self.watchdog is not None:
                self.watchdog.degraded(
                    "central",
                    f"cycle deadline {budget} ns exceeded before dispatch; "
                    f"shed {n} updates",
                )
            return n
        X, valid = self.processor.features_matrix([u[0] for u in updates])
        vi = np.flatnonzero(valid)
        self.skipped_evicted += n - vi.size
        if vi.size == 0:
            return n
        try:
            votes = self.prediction.predict_batch(X[vi])
        except PredictionUnavailableError as exc:
            self.updates_shed += vi.size
            if self.watchdog is not None:
                self.watchdog.failed("prediction", str(exc))
            return n
        live = [updates[i] for i in vi.tolist()]
        chunk = self.BATCH_SHED_CHUNK
        done = 0
        while done < len(live):
            if budget is not None and self.clock() - started > budget:
                shed = len(live) - done
                self.updates_shed += shed
                self.deadline_hits += 1
                if self.watchdog is not None:
                    self.watchdog.degraded(
                        "central",
                        f"cycle deadline {budget} ns exceeded; shed {shed} updates",
                    )
                return n
            part = live[done : done + chunk]
            self.processor.receive_predictions_batch(
                part, votes[done : done + chunk],
                epoch=self.prediction.panel_epoch,
            )
            self.updates_dispatched += len(part)
            done += len(part)
        if self.watchdog is not None:
            self.watchdog.healthy("central")
        return n

    def drain(self, batch: int = 512, max_cycles: int = 1_000_000) -> int:
        """Run cycles until no more updates can be processed.

        Updates belonging to flows that never received a second packet
        (single-packet scan probes, most flood SYNs) are skipped by the
        poll per §III-3 and stay pending forever; the drain stops when a
        cycle makes no progress, not when the pending count hits zero.
        Shed updates count as progress (they were polled), so a drain
        under a too-tight deadline still terminates.
        """
        total = 0
        for _ in range(max_cycles):
            done = self.cycle(max_updates=batch)
            total += done
            if done == 0:
                break
        return total

    # ------------------------------------------------------------------
    # checkpoint/restore
    # ------------------------------------------------------------------
    def state_snapshot(self) -> dict:
        """Cycle/dispatch counters (the coordinator's only mutable
        state — the modules it stitches together snapshot themselves)."""
        return {
            "cycles": self.cycles,
            "updates_dispatched": self.updates_dispatched,
            "skipped_evicted": self.skipped_evicted,
            "updates_shed": self.updates_shed,
            "deadline_hits": self.deadline_hits,
            "poll_retries": self.poll_retries,
            "poll_failures": self.poll_failures,
        }

    def state_restore(self, state: dict) -> None:
        self.cycles = int(state["cycles"])
        self.updates_dispatched = int(state["updates_dispatched"])
        self.skipped_evicted = int(state["skipped_evicted"])
        self.updates_shed = int(state["updates_shed"])
        self.deadline_hits = int(state["deadline_hits"])
        self.poll_retries = int(state["poll_retries"])
        self.poll_failures = int(state["poll_failures"])

    def stats(self) -> dict:
        """Counters for the mechanism's stats surface."""
        return {
            "cycles": self.cycles,
            "updates_dispatched": self.updates_dispatched,
            "skipped_evicted": self.skipped_evicted,
            "updates_shed": self.updates_shed,
            "deadline_hits": self.deadline_hits,
            "poll_retries": self.poll_retries,
            "poll_failures": self.poll_failures,
        }
