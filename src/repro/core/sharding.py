"""Shard-parallel execution of the detection mechanism.

The single-process detector tops out at one core; AmLight-scale rates
(80 M packets/minute, §V) need horizontal scaling.  This module adds it
without touching the per-flow math: telemetry is partitioned by the
*canonical five-tuple* hash (:func:`~repro.features.keys.shard_arrays`),
so every flow's entire packet sequence — and therefore all of its state:
Welford moments, dirty stamps, sliding decision window — lives on exactly
one worker.  Each worker runs a full, ordinary
:class:`~repro.core.mechanism.AutomatedDDoSDetector` over its shard of
the stream; flow-state disjointness is what makes the merged output
*result-identical* to a single-process batched run.

Data plane
----------
One :class:`~repro.common.buffers.SharedRing` of raw bytes per worker.
Telemetry moves as **batch frames** (the DPDK ``rte_eth_rx_burst``
shape: whole bursts, not records): the coordinator groups each poll
slice by shard *once*, packs one contiguous frame per shard — a 32-byte
header carrying ``kind``/``count``/``seq_base``, an ``int64`` seq
block, and the raw record bytes — and pushes it with a single ring
operation.  The worker reads the length-prefixed frame back with
exactly two ring operations and reconstructs seqs and records as
zero-copy structured views; the hot path never pickles and never
copies field-by-field.  Control rides the frame header instead of
consuming slots:

* ``FRAME_DATA``  — records with no cycle boundary (the trailing
  partial slice and the chaos-injector flush);
* ``FRAME_CYCLE`` — a poll slice *plus* the poll-cycle barrier: the
  coordinator sends one to every ring at each full ``poll_every``
  boundary of the *original* stream (empty partitions get an empty
  CYCLE frame, preserving the barrier cadence), and the worker runs
  exactly one CentralServer cycle per CYCLE frame.  That reproduces
  the single-process cycle cadence, so each flow sees the same
  sequence of (packets folded) → (poll) → (predict) transitions for
  any worker count.  After the cycle the worker packs the predictions
  it produced into one :data:`RESULT_DTYPE` block, ships it up the
  pipe, and trims them from its in-memory log — so worker memory *and*
  checkpoint size stay O(flows) instead of O(stream);
* ``FRAME_EOF``   — end of stream (always empty): the worker drains
  its backlog, ships the final result block, and exits;
* ``FRAME_SWAP``  — a lifecycle hot-swap barrier: the payload is an
  RPRCKPT1-framed model-panel blob, broadcast to every ring between
  two CYCLE frames, so each worker installs the new generation at the
  same global cycle boundary (see :mod:`repro.lifecycle`).

Fault injection runs at the coordinator on the *unified* stream
(:meth:`~repro.resilience.chaos.FaultInjector.transform_batch`), before
sequence numbers are assigned and before partitioning — a chaos replay
is a property of the run, not of the worker count.

Fault tolerance
---------------
The coordinator side is a :class:`Supervisor`: it spawns the workers,
tracks their liveness (exit codes via ``peer_alive`` probes inside ring
waits, missed-heartbeat deadlines for alive-but-hung workers), and
recovers a dead shard without losing the run.  Recovery is
checkpoint + replay:

* every ``checkpoint_every`` CYCLE frames, a worker snapshots its full
  deterministic state (:mod:`repro.core.checkpoint`) and ships the
  content-hashed blob up the pipe;
* the coordinator keeps every pushed **frame** in a bounded per-shard
  **replay buffer**, tagged with the number of CYCLE frames sent to
  that shard before it; a checkpoint at cycle *c* prunes tags ``< c``;
* on death, the ring is :meth:`~repro.common.buffers.SharedRing.reset`,
  a fresh worker is spawned with the last checkpoint blob, and the
  buffered frame suffix (tags ``>= c``, ending with the original EOF
  if it was already sent) is replayed into the fresh ring.  Result
  blocks already received for cycles *after* the checkpoint are
  discarded — the replayed worker regenerates them bit-for-bit.

Because the worker pipeline is deterministic in the delivered frame
sequence, the respawned worker reproduces the dead one's output
bit-for-bit — the merged ``prediction_log_digest`` of a murdered run
equals the unfaulted single-process digest.  A crash that outruns the
replay buffer (the needed suffix was partly dropped to honour the
bound) degrades *loudly*: the shard is marked FAILED on the watchdog,
``lossy_recoveries`` is counted, and the run still completes.

Determinism
-----------
The merged log is sorted by ``(seq, shard)``.  ``seq`` is the record's
index in the delivered stream and every delivered record registers
exactly one update, so the order is total and identical to the
single-process run's — the shard-equivalence suite asserts byte-equal
digests over the deterministic entry fields for shards ∈ {1, 2, 4},
clean and under chaos.  Wall-clock stamps are per-process and excluded
from the digest (latency *measurement* still works per worker; latency
*identity* across process boundaries is meaningless).

Equivalence holds in the no-backlog regime (``cycle_budget`` at least
the updates a slice can register): a binding budget sheds different
tails in different partitions, just as it sheds different tails under
different wall-clock speeds in a single process.  A shared ``max_flows``
cap is likewise per-worker in sharded mode.
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
import select
import operator
import os
import time
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.common.buffers import (
    FRAME_CYCLE,
    FRAME_DATA,
    FRAME_EOF,
    FRAME_HEADER_BYTES,
    FRAME_SWAP,
    PeerDead,
    SharedRing,
    pack_blob_frame,
    pack_frame,
    read_frame_header,
    unpack_frame_payload,
)
from repro.features.keys import canonical_key_arrays, shard_arrays
from repro.resilience.process_chaos import ProcessChaos

from .checkpoint import (
    CheckpointError,
    panel_content_hash,
    restore_detector,
    snapshot_detector,
    unpack_panel,
)
from .database import FlowDatabase, PredictionEntry

if TYPE_CHECKING:
    from multiprocessing.connection import Connection

    from .mechanism import AutomatedDDoSDetector

__all__ = [
    "Supervisor",
    "run_sharded",
    "prediction_log_digest",
    "pack_predictions",
    "unpack_predictions",
]

_UINT8 = np.dtype(np.uint8)
_SEQ_BYTES = 8  # one int64 per record in a frame's seq block

#: Result-array schema a worker ships back: the deterministic
#: PredictionEntry fields plus both wall stamps (for per-worker latency
#: stats).  Votes travel as a bitmask + count; ``final`` uses -1 for the
#: not-yet-decided ``None``.
RESULT_DTYPE = np.dtype([
    ("k0", "i8"), ("k1", "i8"), ("k2", "i8"), ("k3", "i8"), ("k4", "i8"),
    ("ts_registered_ns", "i8"),
    ("wall_registered_ns", "i8"),
    ("wall_predicted_ns", "i8"),
    ("label", "i1"),
    ("votes_mask", "u8"),
    ("votes_n", "i1"),
    ("final", "i1"),
    ("seq", "i8"),
    ("epoch", "i2"),
])


# ---------------------------------------------------------------------------
# prediction-log packing (worker → coordinator, and digests)
# ---------------------------------------------------------------------------
_ENTRY_FIELDS = operator.attrgetter(
    "key", "ts_registered_ns", "wall_registered_ns", "wall_predicted_ns",
    "label", "votes", "final_decision", "seq", "epoch",
)


def pack_predictions(entries: List[PredictionEntry]) -> np.ndarray:
    """Pack a prediction log into :data:`RESULT_DTYPE` rows.

    Column-vectorized: one attrgetter call per entry, then whole-column
    NumPy assignments — the worker packs one block per cycle on the hot
    path, so per-row structured-array proxies are too slow here.
    """
    n = len(entries)
    out = np.zeros(n, dtype=RESULT_DTYPE)
    if n == 0:
        return out
    rows = [_ENTRY_FIELDS(e) for e in entries]
    keys, ts, wall_reg, wall_pred, labels, votes, finals, seqs, epochs = zip(*rows)
    karr = np.array(keys, dtype=np.int64)
    out["k0"] = karr[:, 0]
    out["k1"] = karr[:, 1]
    out["k2"] = karr[:, 2]
    out["k3"] = karr[:, 3]
    out["k4"] = karr[:, 4]
    out["ts_registered_ns"] = ts
    out["wall_registered_ns"] = wall_reg
    out["wall_predicted_ns"] = wall_pred
    out["label"] = labels
    # Vote tuples come from a tiny alphabet (panel size ≤ 8 in
    # practice), so memoize the mask encoding per distinct tuple.
    mcache: Dict[tuple, Tuple[int, int]] = {}
    masks = np.zeros(n, dtype=np.uint64)
    vns = np.zeros(n, dtype=np.int8)
    for i, v in enumerate(votes):
        enc = mcache.get(v)
        if enc is None:
            mask = 0
            for b, bit in enumerate(v):
                mask |= (int(bit) & 1) << b
            enc = (mask, len(v))
            mcache[v] = enc
        masks[i] = enc[0]
        vns[i] = enc[1]
    out["votes_mask"] = masks
    out["votes_n"] = vns
    out["final"] = [-1 if f is None else int(f) for f in finals]
    out["seq"] = seqs
    out["epoch"] = epochs
    return out


def unpack_predictions(packed: np.ndarray) -> List[PredictionEntry]:
    """Inverse of :func:`pack_predictions`.

    Column-vectorized like its inverse: ``.tolist()`` per column (one C
    loop each, yielding Python ints directly) and a memoized vote-mask
    decode, instead of ~13 structured row-proxy accesses per entry.
    """
    n = int(packed.shape[0])
    fast = PredictionEntry.fast
    out: List[PredictionEntry] = []
    if n == 0:
        return out
    k0 = packed["k0"].tolist()
    k1 = packed["k1"].tolist()
    k2 = packed["k2"].tolist()
    k3 = packed["k3"].tolist()
    k4 = packed["k4"].tolist()
    ts = packed["ts_registered_ns"].tolist()
    wall_reg = packed["wall_registered_ns"].tolist()
    wall_pred = packed["wall_predicted_ns"].tolist()
    labels = packed["label"].tolist()
    masks = packed["votes_mask"].tolist()
    vns = packed["votes_n"].tolist()
    finals = packed["final"].tolist()
    seqs = packed["seq"].tolist()
    epochs = packed["epoch"].tolist()
    vcache: Dict[Tuple[int, int], tuple] = {}
    append = out.append
    for i in range(n):
        vkey = (masks[i], vns[i])
        votes = vcache.get(vkey)
        if votes is None:
            mask, vn = vkey
            votes = tuple((mask >> b) & 1 for b in range(vn))
            vcache[vkey] = votes
        final = finals[i]
        append(fast(
            (k0[i], k1[i], k2[i], k3[i], k4[i]),
            ts[i],
            wall_reg[i],
            wall_pred[i],
            labels[i],
            votes,
            None if final < 0 else final,
            seqs[i],
            epochs[i],
        ))
    return out


def prediction_log_digest(db: FlowDatabase) -> str:
    """SHA-256 over the run's *deterministic* prediction outcome.

    Entries are canonically ordered by ``(seq, key)`` and serialized
    over the fields that must agree across execution modes: flow key,
    telemetry timestamp, label, votes, final decision, and seq.  Wall
    stamps are excluded — they come from per-process clocks.  Two runs
    are result-identical iff their digests match.
    """
    lines = []
    for e in sorted(db.predictions, key=lambda e: (e.seq, e.key)):
        lines.append(
            f"{e.key}|{e.ts_registered_ns}|{e.label}|{e.votes}|"
            f"{e.final_decision}|{e.seq}"
        )
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


# ---------------------------------------------------------------------------
# worker
# ---------------------------------------------------------------------------
def _install_swap(det: "AutomatedDDoSDetector", blob: bytes) -> None:
    """Install a broadcast panel blob into a worker's serving module.

    Idempotent on replay: a respawned worker whose checkpoint already
    carries the swapped generation (reinstalled from the spec's panel
    archive) sees the replayed ``FRAME_SWAP`` again and must skip it —
    ``swap_panel`` requires a strictly increasing epoch, so a stale
    frame is a no-op instead of an error.
    """
    payload = unpack_panel(blob)
    epoch = int(payload["panel_epoch"])
    if epoch <= det.prediction.panel_epoch:
        return
    det.prediction.swap_panel(
        payload["scaler"],
        payload["models"],
        epoch,
        panel_content_hash(blob),
        feature_names=payload["feature_names"],
    )


def _reinstall_checkpointed_panel(
    det: "AutomatedDDoSDetector", panels: Dict[int, bytes]
) -> None:
    """After a checkpoint restore, put the *models* of the serving
    generation back (checkpoints carry epoch + content hash, never the
    model objects — those live in the supervisor's panel archive).
    A missing or hash-mismatched archive entry is a loud
    :class:`CheckpointError`: serving the wrong generation's models
    would silently diverge the merged log.
    """
    epoch = det.prediction.panel_epoch
    if epoch <= 0:
        return
    blob = panels.get(epoch)
    if blob is None:
        raise CheckpointError(
            f"checkpoint names panel epoch {epoch} but the worker spec's "
            f"panel archive only has epochs {sorted(panels)}"
        )
    got = panel_content_hash(blob)
    if det.prediction.panel_hash and got != det.prediction.panel_hash:
        raise CheckpointError(
            f"panel archive hash {got} != checkpointed serving hash "
            f"{det.prediction.panel_hash} for epoch {epoch}"
        )
    payload = unpack_panel(blob)
    det.prediction.load_panel(payload["scaler"], payload["models"])


def _shard_worker_main(spec: Dict[str, Any], conn: "Connection") -> None:
    """Worker entry point: consume framed telemetry until EOF.

    ``spec`` is a plain picklable dict (spawn-compatible even though the
    default start method is fork): ring coordinates, the trained bundle,
    the detector configuration, and — for supervised runs — the restore
    blob, checkpoint cadence, and any worker-side chaos fault plan.
    The worker runs a completely ordinary batched detector — sharding
    lives entirely outside it.

    Pipe protocol (worker → coordinator, all tuples):

    * ``("res", cycles_done, packed)`` — the predictions this cycle
      produced, as one :data:`RESULT_DTYPE` block (``None`` for an
      empty cycle); the worker trims shipped entries from its log.
      Sent after *every* CYCLE frame, so it doubles as the liveness
      heartbeat;
    * ``("hb", cycles_done)`` — extra liveness ping during the post-EOF
      drain (between drain rounds, when no cycle boundary fires);
    * ``("checkpoint", cycles_done, last_seq, blob)`` — content-hashed
      state snapshot, every ``checkpoint_every`` CYCLE frames (sent
      *after* that cycle's result block, so a restore from cycle *c*
      composes exactly with the blocks for cycles ``<= c``);
    * ``("result", packed, stats, actions)`` — the final result block
      (EOF-drain predictions) plus the shard's mitigation flow-tier
      action log (None when no mitigation subsystem is attached);
    * ``("error", msg)`` — best-effort last words before dying.
    """
    # Local import: the mechanism module imports this one.
    from .mechanism import AutomatedDDoSDetector

    record_dtype = np.dtype(spec["record_dtype"])
    ring = SharedRing.attach(str(spec["ring_name"]), _UINT8,
                             int(spec["capacity_bytes"]))
    det = AutomatedDDoSDetector(
        bundle=spec["bundle"], batched=True, **spec["config"]
    )
    # Mitigation clone: attach BEFORE restore so a checkpointed
    # mitigation payload restores into it.  The spec ships a picklable
    # (factory, config) pair — the factory is a module-level function
    # imported by reference at unpickle time, so core never imports the
    # mitigation layer.
    mitigation_spec = spec.get("mitigation")
    if mitigation_spec is not None:
        factory, mitigation_cfg = mitigation_spec
        factory(mitigation_cfg).attach_to(det)
    cycle_budget = int(spec["cycle_budget"])
    timeout_s = float(spec["idle_timeout_s"])
    checkpoint_every = int(spec.get("checkpoint_every", 0))
    raise_at = int(spec.get("raise_at_cycle", 0))
    hang_at = int(spec.get("hang_at_cycle", 0))
    parent_pid = int(spec.get("parent_pid", 0))

    cycles_done = 0
    last_seq = -1
    restore_blob = spec.get("restore")
    if restore_blob is not None:
        payload = restore_detector(det, restore_blob)
        cycles_done = int(payload["cycles_done"])
        last_seq = int(payload["last_seq"])
        _reinstall_checkpointed_panel(det, spec.get("panels") or {})

    seq_checker: Optional[Any] = None
    if os.environ.get("REPRO_SANITIZE") == "1":
        # repro: allow[LAY001] env-gated diagnostic shim: imported only under REPRO_SANITIZE=1
        from repro.verify.sanitizer import FrameSeqChecker
        # The floor survives restores: the replayed suffix must deliver
        # seqs strictly after the checkpoint's last folded one.
        seq_checker = FrameSeqChecker(int(spec["shard"]), floor=last_seq)

    def coordinator_alive() -> bool:
        return os.getppid() == parent_pid

    alive: Optional[Callable[[], bool]] = (
        coordinator_alive if parent_pid else None
    )
    db = det.db

    def ship_cycle_block() -> None:
        """Stream this cycle's predictions up the pipe and trim them.

        Trimming is what keeps the worker's log — and therefore every
        checkpoint blob — O(flows) instead of O(stream): the coordinator
        is the system of record for shipped blocks, and on recovery it
        discards blocks newer than the restored checkpoint so the
        replayed worker can regenerate them.

        Sent every cycle even when empty (``None`` payload): the message
        doubles as the liveness heartbeat, halving per-cycle pipe
        traffic versus a separate ``hb`` send.
        """
        tail = db.predictions
        if tail:
            packed: Optional[np.ndarray] = pack_predictions(tail)
            db.trim_predictions(len(tail))
        else:
            packed = None
        conn.send(("res", cycles_done, packed))

    try:
        while True:
            header = ring.pop_exact(
                FRAME_HEADER_BYTES, timeout=timeout_s, peer_alive=alive
            )
            kind, count, _seq_base, payload_bytes = read_frame_header(header)
            if kind == FRAME_SWAP:
                # Panel blob, not records: consume the payload before
                # the generic seq/record unpack (count is 0 here) and
                # switch generations at this exact frame position —
                # between the CYCLE that triggered the swap and the
                # next one, the same boundary on every shard.
                blob_arr = ring.pop_exact(
                    payload_bytes, timeout=timeout_s, peer_alive=alive
                )
                _install_swap(det, blob_arr.tobytes())
                continue
            if payload_bytes:
                payload = ring.pop_exact(
                    payload_bytes, timeout=timeout_s, peer_alive=alive
                )
                # Zero-copy views into the popped payload (worker-private
                # memory — see unpack_frame_payload's aliasing contract).
                seqs, records = unpack_frame_payload(
                    payload, count, record_dtype
                )
                if seq_checker is not None:
                    # live exactly-once check: frame seqs must strictly
                    # increase across the worker's lifetime, restores
                    # included
                    seq_checker.on_frame(seqs.tolist())
                det.collection.feed_batch(records, seqs=seqs)
                last_seq = int(seqs[-1])
            if kind == FRAME_DATA:
                continue
            if kind == FRAME_CYCLE:
                # Window tick BEFORE the cycle, matching the
                # single-process run_stream ordering, so sketch decay
                # cadence is identical across execution modes.
                if det.sketch_gate is not None:
                    det.sketch_gate.end_window()
                det.central.cycle(max_updates=cycle_budget)
                if det.mitigation is not None:
                    # Flow-tier sweep before the result/checkpoint sends
                    # so snapshots are self-consistent (flow cursor,
                    # action log and predictions aligned).
                    det.mitigation.on_cycle()
                cycles_done += 1
                if raise_at and cycles_done == raise_at:
                    raise RuntimeError(
                        f"chaos: raise-in-worker at cycle {cycles_done}"
                    )
                if hang_at and cycles_done == hang_at:
                    # Simulated livelock: alive, silent, no progress.
                    # Only the supervisor's missed-heartbeat deadline
                    # can end this worker.
                    while True:
                        # repro: allow[DET002] chaos hang loop; killed externally by the supervisor
                        time.sleep(0.05)
                ship_cycle_block()
                if checkpoint_every and cycles_done % checkpoint_every == 0:
                    blob = snapshot_detector(det, cycles_done, last_seq)
                    conn.send(("checkpoint", cycles_done, last_seq, blob))
            else:  # FRAME_EOF
                # Manual drain (cycle until no progress) so liveness
                # pings keep flowing through a long final backlog.
                while det.central.cycle(max_updates=cycle_budget) > 0:
                    conn.send(("hb", cycles_done))
                if det.mitigation is not None:
                    det.mitigation.on_cycle()
                break
        actions = (
            list(det.mitigation.action_log)
            if det.mitigation is not None else None
        )
        conn.send(
            ("result", pack_predictions(db.predictions), det.stats(),
             actions)
        )
    except BaseException as exc:  # noqa: BLE001 - report, then die
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
        raise
    finally:
        conn.close()
        ring.close()


# ---------------------------------------------------------------------------
# coordinator / supervision
# ---------------------------------------------------------------------------
class _WorkerHung(RuntimeError):
    """Internal: a worker is alive but missed its heartbeat deadline."""


class Supervisor:
    """Worker lifecycle manager for one sharded run.

    Owns the rings, processes, and pipes; every frame pushed to a
    worker goes through :meth:`send`, which (1) records the frame in
    the shard's bounded replay buffer *before* pushing and (2) waits
    with liveness probes, so a dead consumer surfaces as
    :class:`~repro.common.buffers.PeerDead` (never an infinite
    backpressure hang) and triggers :meth:`recover` in place.

    Parameters
    ----------
    detector :
        The coordinator-side detector (supplies the bundle, the worker
        config recipe, and the watchdog that receives shard lifecycle
        health alerts).
    record_dtype, n_shards, ring_capacity, cycle_budget, idle_timeout_s,
    start_method :
        Run layout, as in :func:`run_sharded`.  ``ring_capacity`` is in
        *records*; the byte ring is sized for that many framed records
        plus header headroom.
    checkpoint_every : int
        CYCLE frames between worker checkpoints; 0 disables
        checkpointing (recovery then replays the whole stream).
    replay_buffer_records : int
        Per-shard replay-buffer bound in *records* (control frames are
        free).  Oldest frames are dropped (and counted) past the bound;
        a recovery that needed a dropped frame is *lossy* and degrades
        loudly.
    heartbeat_timeout_s : float
        An alive worker that neither messages nor consumes ring slots
        for this long (while the coordinator is waiting on it) is
        declared hung, killed, and recovered.
    process_chaos : ProcessChaos, optional
        Worker-kill plan (initial spawns only; respawns are never
        re-targeted).
    max_respawns : int
        Per-shard respawn budget; exceeding it aborts the run (a shard
        that keeps dying is a systemic failure, not a transient one).
    clock : callable() -> int, optional
        Monotonic ns source for heartbeat deadlines and restore-latency
        measurement; injectable for deterministic tests.
    """

    def __init__(
        self,
        detector: "AutomatedDDoSDetector",
        record_dtype: np.dtype,
        n_shards: int,
        ring_capacity: int,
        cycle_budget: int,
        idle_timeout_s: float,
        start_method: str = "fork",
        checkpoint_every: int = 16,
        replay_buffer_records: Optional[int] = None,
        heartbeat_timeout_s: float = 30.0,
        process_chaos: Optional[ProcessChaos] = None,
        max_respawns: int = 3,
        clock: Optional[Callable[[], int]] = None,
    ) -> None:
        self.detector = detector
        self.record_dtype = np.dtype(record_dtype)
        self.n_shards = int(n_shards)
        self.ring_capacity = int(ring_capacity)
        # Byte ring sized for `ring_capacity` framed records (payload =
        # record + int64 seq) plus headroom for the frame headers a
        # slice-per-frame protocol can have in flight.
        self.capacity_bytes = max(
            self.ring_capacity * (self.record_dtype.itemsize + _SEQ_BYTES)
            + 64 * FRAME_HEADER_BYTES,
            1 << 16,
        )
        self.cycle_budget = int(cycle_budget)
        self.idle_timeout_s = float(idle_timeout_s)
        self.checkpoint_every = int(checkpoint_every)
        if replay_buffer_records is None:
            # Default bound: several checkpoint intervals of slots, so a
            # clean run never outruns it even if every record lands on
            # one shard (checkpoints prune the buffer as they arrive).
            per_interval = max(self.checkpoint_every, 1) * 64 + 64
            replay_buffer_records = max(4 * per_interval, 4096)
        self.replay_buffer_records = int(replay_buffer_records)
        self.heartbeat_timeout_s = float(heartbeat_timeout_s)
        self.process_chaos = process_chaos
        self.max_respawns = int(max_respawns)
        self.clock: Callable[[], int] = (
            clock if clock is not None
            else time.monotonic_ns  # repro: allow[DET002] injectable default; supervision deadlines are wall-clock by nature
        )
        self._ctx = mp.get_context(start_method)
        self.rings: List[SharedRing] = []
        self.procs: List[Any] = []
        self.conns: List[Any] = []
        # Replay buffer: per shard, list of (tag, frame, n_records)
        # where tag is the number of CYCLE frames sent to that shard
        # before this frame.
        self._replay: List[List[Tuple[int, np.ndarray, int]]] = []
        self._replay_size: List[int] = []
        self._max_dropped_tag: List[int] = []
        # Last received checkpoint per shard: (cycle, last_seq, blob).
        self._checkpoints: List[Optional[Tuple[int, int, bytes]]] = []
        self._last_error: List[str] = []
        # Per-cycle result blocks streamed up the pipe, per shard, as
        # (cycle, packed) in cycle order; truncated on recovery.
        self._result_blocks: List[List[Tuple[int, np.ndarray]]] = []
        self._results: List[Optional[Tuple[np.ndarray, dict, Any]]] = []
        self._progress_ns: List[int] = []
        self._respawns: List[int] = []
        self.cycles_sent = 0
        # Panel archive: every broadcast generation's blob, keyed by
        # epoch.  Respawned workers get the whole archive in their spec
        # so a checkpoint naming a post-swap generation can reinstall
        # the exact models (hash-checked).
        self._panels: Dict[int, bytes] = {}
        # Counters for mechanism.stats().
        self.workers_died = 0
        self.workers_respawned = 0
        self.checkpoints_taken = 0
        self.lossy_recoveries = 0
        self.swap_broadcasts = 0
        self.replay_dropped_records = 0
        self.restore_latencies_s: List[float] = []
        self._empty_seqs = np.empty(0, dtype=np.int64)
        self._empty_records = np.empty(0, dtype=self.record_dtype)

    # ------------------------------------------------------------------
    # spawning
    # ------------------------------------------------------------------
    def _mitigation_spec(self) -> Optional[Tuple[Any, Dict[str, Any]]]:
        """Picklable worker recipe for the attached mitigation subsystem
        (duck-typed — the controller lives in a higher layer)."""
        mitigation = getattr(self.detector, "mitigation", None)
        if mitigation is None:
            return None
        return mitigation.worker_spec()

    def _spawn(
        self, shard: int, restore: Optional[bytes], initial: bool = False
    ) -> None:
        """(Re)start one worker process on this shard's ring.

        ``restore`` carries the checkpoint blob for respawns (``None``
        when the shard died before its first checkpoint — the worker
        then starts fresh and the coordinator replays everything).
        Chaos fault plans are armed only on the ``initial`` spawn:
        re-arming a raise/hang on a respawn would crash-loop recovery.
        """
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        raise_at = hang_at = 0
        if initial and self.process_chaos is not None:
            raise_at, hang_at = self.process_chaos.worker_fault(shard)
        spec: Dict[str, Any] = {
            "shard": shard,
            "ring_name": self.rings[shard].name,
            "capacity_bytes": self.capacity_bytes,
            "record_dtype": self.record_dtype,
            "bundle": self.detector.bundle,
            "config": self.detector.worker_config(),
            "cycle_budget": self.cycle_budget,
            "idle_timeout_s": self.idle_timeout_s,
            "checkpoint_every": self.checkpoint_every,
            "restore": restore,
            "raise_at_cycle": raise_at,
            "hang_at_cycle": hang_at,
            "parent_pid": os.getpid(),
            "mitigation": self._mitigation_spec(),
            "panels": dict(self._panels),
        }
        proc = self._ctx.Process(
            target=_shard_worker_main,
            args=(spec, child_conn),
            name=f"shard-{shard}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self.procs[shard] = proc
        self.conns[shard] = parent_conn
        self._progress_ns[shard] = self.clock()

    def start(self) -> None:
        """Create the rings and launch every shard's initial worker."""
        for shard in range(self.n_shards):
            self.rings.append(SharedRing(_UINT8, self.capacity_bytes))
            self.procs.append(None)
            self.conns.append(None)
            self._replay.append([])
            self._replay_size.append(0)
            self._max_dropped_tag.append(-1)
            self._checkpoints.append(None)
            self._last_error.append("")
            self._result_blocks.append([])
            self._results.append(None)
            self._progress_ns.append(0)
            self._respawns.append(0)
            self._spawn(shard, restore=None, initial=True)

    # ------------------------------------------------------------------
    # pipe pumping (heartbeats, checkpoints, errors, results)
    # ------------------------------------------------------------------
    def _handle(self, shard: int, msg: Tuple[Any, ...]) -> None:
        self._progress_ns[shard] = self.clock()
        kind = msg[0]
        if kind == "hb":
            pass
        elif kind == "res":
            # None payload = empty cycle; the send still counts as a
            # heartbeat (progress stamp above) but buffers nothing.
            if msg[2] is not None:
                self._result_blocks[shard].append((int(msg[1]), msg[2]))
        elif kind == "checkpoint":
            cycle, last_seq, blob = int(msg[1]), int(msg[2]), msg[3]
            self._checkpoints[shard] = (cycle, last_seq, blob)
            self.checkpoints_taken += 1
            # Prune replay entries the checkpoint now covers.
            buf = self._replay[shard]
            keep = 0
            while keep < len(buf) and buf[keep][0] < cycle:
                self._replay_size[shard] -= buf[keep][2]
                keep += 1
            if keep:
                del buf[:keep]
        elif kind == "result":
            self._results[shard] = (
                msg[1], msg[2], msg[3] if len(msg) > 3 else None
            )
        elif kind == "error":
            self._last_error[shard] = str(msg[1])

    def _pump(self) -> None:
        """Drain every worker pipe without blocking.

        Called from ring-wait loops and the collect loop: keeps
        heartbeats fresh, prunes replay buffers as checkpoints land, and
        — critically — unblocks a worker stuck sending a large
        checkpoint blob while the coordinator is itself blocked pushing
        into that worker's full ring.

        One ``select.select`` over all live pipes per round instead of
        a per-pipe ``Connection.poll`` — ``poll`` builds and registers
        a fresh selector object per call, which at one pump per
        dispatched frame was a measurable slice of coordinator CPU.
        """
        watch: List[Any] = []
        shard_of: Dict[Any, int] = {}
        for shard, conn in enumerate(self.conns):
            if conn is None or self._results[shard] is not None:
                continue
            watch.append(conn)
            shard_of[conn] = shard
        while watch:
            try:
                ready = select.select(watch, [], [], 0)[0]
            except (OSError, ValueError):
                return  # a pipe died mid-wait; liveness probes handle it
            if not ready:
                return
            for conn in ready:
                shard = shard_of[conn]
                try:
                    self._handle(shard, conn.recv())
                except (EOFError, OSError):
                    # Worker died mid-send; liveness probes handle it.
                    if conn in watch:
                        watch.remove(conn)
                if self._results[shard] is not None and conn in watch:
                    watch.remove(conn)

    def _stale(self, shard: int) -> bool:
        elapsed_s = (self.clock() - self._progress_ns[shard]) / 1e9
        return elapsed_s > self.heartbeat_timeout_s

    # ------------------------------------------------------------------
    # guarded push + recovery
    # ------------------------------------------------------------------
    def _buffer(self, shard: int, frame: np.ndarray, tag: int,
                n_records: int) -> None:
        """Append a frame to the shard's replay buffer, enforcing the
        record bound by dropping oldest frames (loudly counted)."""
        buf = self._replay[shard]
        buf.append((tag, frame, n_records))
        self._replay_size[shard] += n_records
        while self._replay_size[shard] > self.replay_buffer_records and len(buf) > 1:
            old_tag, _old_frame, old_n = buf.pop(0)
            self._replay_size[shard] -= old_n
            self.replay_dropped_records += old_n
            if old_tag > self._max_dropped_tag[shard]:
                self._max_dropped_tag[shard] = old_tag

    def _push(self, shard: int, frame: np.ndarray) -> None:
        """Push with liveness probes; raises PeerDead/_WorkerHung."""
        ring = self.rings[shard]
        proc = self.procs[shard]
        fill_before = len(ring)

        def on_wait() -> None:
            nonlocal fill_before
            self._pump()
            fill = len(ring)
            if fill != fill_before:
                fill_before = fill
                self._progress_ns[shard] = self.clock()
            elif self._stale(shard):
                raise _WorkerHung(
                    f"shard {shard} consumed nothing for "
                    f"{self.heartbeat_timeout_s:.1f}s with a full ring"
                )

        ring.push(
            frame,
            timeout=self.idle_timeout_s,
            peer_alive=proc.is_alive,
            on_wait=on_wait,
        )

    def send(self, shard: int, frame: np.ndarray, tag: int,
             n_records: int) -> None:
        """Record a frame in the replay buffer, then push it.

        On consumer death (``PeerDead``), a missed heartbeat deadline,
        or a full-ring timeout, the shard is recovered in place — the
        current frame is already buffered, so the recovery replay
        delivers it and this call returns with the stream intact.
        """
        self._buffer(shard, frame, tag, n_records)
        try:
            self._push(shard, frame)
        except PeerDead:
            self.recover(shard, self._death_reason(shard))
        except (_WorkerHung, TimeoutError) as exc:
            self._kill(shard)
            self.recover(shard, f"hung: {exc}")

    def _death_reason(self, shard: int) -> str:
        proc = self.procs[shard]
        proc.join(timeout=self.idle_timeout_s)
        reason = f"exitcode {proc.exitcode}"
        if self._last_error[shard]:
            reason += f"; last error: {self._last_error[shard]}"
        return reason

    def _kill(self, shard: int) -> None:
        proc = self.procs[shard]
        try:
            proc.kill()
        except (ProcessLookupError, AttributeError):
            pass
        proc.join(timeout=self.idle_timeout_s)

    def recover(self, shard: int, reason: str) -> None:
        """Respawn a dead shard from its last checkpoint and replay the
        buffered suffix.  Emits DEGRADED → HEALTHY watchdog transitions
        (FAILED instead, when the crash outran the replay buffer)."""
        t0 = self.clock()
        watchdog = self.detector.watchdog
        module = f"shard-{shard}"
        self.workers_died += 1
        watchdog.degraded(module, f"worker died ({reason})")
        self._kill(shard)  # reap if not already gone
        try:
            self.conns[shard].close()
        except Exception:
            pass

        ckpt = self._checkpoints[shard]
        cycle, last_seq = (ckpt[0], ckpt[1]) if ckpt is not None else (0, -1)
        blob = ckpt[2] if ckpt is not None else None
        lossy = self._max_dropped_tag[shard] >= cycle
        if lossy:
            self.lossy_recoveries += 1
            watchdog.failed(
                module,
                f"crash outran the replay buffer: checkpoint cycle {cycle} "
                f"needs blocks up to tag {self._max_dropped_tag[shard]} that "
                "were dropped; recovered state will diverge",
            )

        for attempt in range(self.max_respawns):
            self._respawns[shard] += 1
            if self._respawns[shard] > self.max_respawns:
                raise RuntimeError(
                    f"shard {shard} exceeded {self.max_respawns} respawns "
                    f"({reason})"
                )
            # Re-read the newest checkpoint per attempt: a previous
            # attempt's worker may have checkpointed mid-replay (pumped
            # in through _push's on_wait), which already pruned the
            # replay buffer past the original checkpoint.
            ckpt = self._checkpoints[shard]
            cycle, last_seq = (
                (ckpt[0], ckpt[1]) if ckpt is not None else (0, -1)
            )
            blob = ckpt[2] if ckpt is not None else None
            # Drop result blocks for cycles after the checkpoint: the
            # restored worker re-consumes the replayed frame suffix and
            # regenerates those blocks bit-for-bit (its own log was
            # trimmed up to the checkpoint, so keeping ours would
            # double-count).  Re-done per attempt — a worker that dies
            # *during* replay may already have streamed new blocks.
            self._result_blocks[shard] = [
                blk for blk in self._result_blocks[shard] if blk[0] <= cycle
            ]
            replay_frames = [
                (tag, frame) for tag, frame, _n in list(self._replay[shard])
                if tag >= cycle
            ]
            if os.environ.get("REPRO_SANITIZE") == "1":
                # repro: allow[LAY001] env-gated diagnostic shim: imported only under REPRO_SANITIZE=1
                from repro.verify.sanitizer import assert_recover
                assert_recover(
                    shard, cycle,
                    [blk[0] for blk in self._result_blocks[shard]],
                    [tag for tag, _frame in replay_frames],
                    self.procs[shard].is_alive(),
                )
            # Fresh worker sees an empty ring (discards any partial
            # write the failed push left) and the checkpointed state.
            self.rings[shard].reset()
            self._spawn(shard, restore=blob)
            try:
                for _tag, frame in replay_frames:
                    self._push(shard, frame)
            except (PeerDead, _WorkerHung, TimeoutError):
                self._kill(shard)
                continue
            break
        else:
            raise RuntimeError(
                f"shard {shard} died {self.max_respawns} times during "
                f"recovery ({reason})"
            )

        self.workers_respawned += 1
        self.restore_latencies_s.append((self.clock() - t0) / 1e9)
        if not lossy:
            watchdog.healthy(
                module,
                f"respawned; restored from checkpoint cycle {cycle} "
                f"(seq {last_seq})",
            )

    # ------------------------------------------------------------------
    # stream driving
    # ------------------------------------------------------------------
    def dispatch(self, kind: int, delivered: np.ndarray,
                 seqs: np.ndarray) -> None:
        """Partition a delivered slice by canonical-key hash and push
        one frame per shard (tagged for replay).

        ``FRAME_CYCLE`` frames go to *every* shard — an empty partition
        still gets an (empty) CYCLE frame, preserving the barrier
        cadence — advance the replay tag, and trigger any scheduled
        SIGKILL chaos.  ``FRAME_DATA`` frames skip empty partitions;
        ``FRAME_EOF`` is always empty and goes everywhere.
        """
        n = int(delivered.shape[0])
        tag = self.cycles_sent
        if n == 0:
            if kind != FRAME_DATA:
                for shard in range(self.n_shards):
                    frame = pack_frame(
                        kind, self._empty_seqs, self._empty_records
                    )
                    self.send(shard, frame, tag=tag, n_records=0)
        elif self.n_shards == 1:
            # Single-shard fast path: no partition hash, one frame.
            self.send(
                0, pack_frame(kind, seqs, delivered), tag=tag, n_records=n
            )
        else:
            shards = shard_arrays(
                *canonical_key_arrays(delivered), self.n_shards
            )
            for shard in range(self.n_shards):
                sel = np.flatnonzero(shards == shard)
                if sel.size == 0 and kind == FRAME_DATA:
                    continue
                frame = pack_frame(kind, seqs[sel], delivered[sel])
                self.send(shard, frame, tag=tag, n_records=int(sel.size))
        if kind == FRAME_CYCLE:
            self.cycles_sent += 1
            if self.process_chaos is not None:
                for shard in self.process_chaos.sigkills_at(self.cycles_sent):
                    self._kill(shard)
        self._pump()

    def broadcast_swap(self, epoch: int, blob: bytes) -> None:
        """Broadcast a panel generation to every shard at the current
        CYCLE boundary (the swap barrier).

        Called right after the CYCLE frames for slice *k* were
        dispatched, so the swap frame sits between CYCLE *k* and CYCLE
        *k*+1 on every ring — each worker's ordered frame stream makes
        it install the panel at the same global boundary.  The frame is
        replay-tagged like any other (``tag = cycles_sent``), so a
        worker restored from an earlier checkpoint re-receives it in
        the right position; workers restored from a *later* checkpoint
        skip the stale replay idempotently.  Counts zero records
        against the replay-buffer bound (control frames are free).
        """
        self._panels[int(epoch)] = blob
        self.swap_broadcasts += 1
        frame = pack_blob_frame(FRAME_SWAP, int(epoch), blob)
        for shard in range(self.n_shards):
            self.send(shard, frame, tag=self.cycles_sent, n_records=0)
        self._pump()

    # ------------------------------------------------------------------
    # result collection
    # ------------------------------------------------------------------
    def collect(self) -> List[Tuple[np.ndarray, dict, Any]]:
        """Wait for every shard's result, recovering any worker that
        dies or hangs on the way out."""
        for shard in range(self.n_shards):
            while self._results[shard] is None:
                self._pump()
                if self._results[shard] is not None:
                    break
                proc = self.procs[shard]
                if not proc.is_alive():
                    self._pump()  # drain anything sent before death
                    if self._results[shard] is not None:
                        break
                    self.recover(shard, self._death_reason(shard))
                elif self._stale(shard):
                    self._kill(shard)
                    self.recover(
                        shard,
                        f"missed heartbeat deadline "
                        f"({self.heartbeat_timeout_s:.1f}s) while draining",
                    )
                else:
                    time.sleep(SharedRing.MAX_WAIT_SLEEP_S)  # repro: allow[DET002] coordinator wait loop; bounded by liveness probes above
        out: List[Tuple[np.ndarray, dict, Any]] = []
        for shard in range(self.n_shards):
            result = self._results[shard]
            assert result is not None
            out.append(result)
        return out

    def shard_packed(self, shard: int) -> np.ndarray:
        """A shard's full prediction log: the streamed per-cycle blocks
        (in cycle order, post any recovery truncation) followed by the
        final EOF-drain block.  Call after :meth:`collect`."""
        result = self._results[shard]
        assert result is not None
        blocks = [packed for _cycle, packed in self._result_blocks[shard]]
        blocks.append(result[0])
        if len(blocks) == 1:
            return blocks[0]
        return np.concatenate(blocks)

    def join_all(self) -> None:
        for proc in self.procs:
            if proc is not None:
                proc.join(timeout=self.idle_timeout_s)

    # ------------------------------------------------------------------
    # teardown + observability
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Terminate anything still alive and destroy the rings."""
        for proc in self.procs:
            if proc is not None and proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for ring in self.rings:
            try:
                ring.close()
                ring.unlink()
            except Exception:
                pass

    def stats(self) -> Dict[str, object]:
        """Supervision counters for the mechanism's stats surface."""
        return {
            "workers_died": self.workers_died,
            "workers_respawned": self.workers_respawned,
            "checkpoints_taken": self.checkpoints_taken,
            "lossy_recoveries": self.lossy_recoveries,
            "swap_broadcasts": self.swap_broadcasts,
            "replay_dropped_records": self.replay_dropped_records,
            "restore_latencies_s": list(self.restore_latencies_s),
        }


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------
def run_sharded(
    detector: "AutomatedDDoSDetector",
    records: np.ndarray,
    n_shards: int,
    poll_every: int = 64,
    cycle_budget: int = 128,
    ring_capacity: Optional[int] = None,
    start_method: str = "fork",
    idle_timeout_s: float = 60.0,
    checkpoint_every: int = 16,
    replay_buffer_records: Optional[int] = None,
    heartbeat_timeout_s: float = 30.0,
    process_chaos: Optional[ProcessChaos] = None,
    max_respawns: int = 3,
) -> FlowDatabase:
    """Fan a record stream out over ``n_shards`` supervised workers.

    The coordinator walks the original stream in ``poll_every`` slices —
    the same slicing as the single-process batched loop — applying the
    detector's fault injector (if any) to each slice, assigning global
    sequence numbers to the delivered rows, partitioning them by
    canonical-key hash, and pushing each partition into its worker's
    ring.  Slice boundaries become CYCLE markers on *every* ring; EOF
    follows the final flush.  Results merge into ``detector.db`` sorted
    by ``(seq, shard)``; per-worker stats land on
    ``detector.shard_stats`` and supervision counters on
    ``detector.supervision_stats``.

    Worker crashes (including any scheduled by ``process_chaos``) are
    recovered transparently via checkpoint + replay — see
    :class:`Supervisor`; the merged log is byte-identical to an
    unfaulted run unless the crash outran the replay buffer, which is
    loudly surfaced instead.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1: {n_shards}")
    if poll_every < 1 or cycle_budget < 1:
        raise ValueError("poll_every and cycle_budget must be >= 1")
    gate = getattr(detector, "sketch_gate", None)
    if gate is not None and gate.config.partitions % n_shards != 0:
        # Sketch-cell co-location (repro.sketch.cms) requires the shard
        # count to divide the virtual-partition count; otherwise one
        # partition's flows split across workers and collision patterns
        # — hence admission decisions — would depend on n_shards.
        raise ValueError(
            f"sketch partitions ({gate.config.partitions}) must be a "
            f"multiple of n_shards ({n_shards}) for shard-count-"
            f"independent admission"
        )
    if ring_capacity is None:
        # Room (in records) for several slices per shard so a briefly-
        # stalled worker does not immediately backpressure the
        # coordinator; the Supervisor converts to ring bytes.
        ring_capacity = max(8 * poll_every, 1024)

    sup = Supervisor(
        detector,
        record_dtype=records.dtype,
        n_shards=n_shards,
        ring_capacity=ring_capacity,
        cycle_budget=cycle_budget,
        idle_timeout_s=idle_timeout_s,
        start_method=start_method,
        checkpoint_every=checkpoint_every,
        replay_buffer_records=replay_buffer_records,
        heartbeat_timeout_s=heartbeat_timeout_s,
        process_chaos=process_chaos,
        max_respawns=max_respawns,
    )
    try:
        sup.start()
        injector = detector.fault_injector
        seq_base = 0

        def dispatch(kind: int, delivered: np.ndarray) -> None:
            nonlocal seq_base
            n = delivered.shape[0]
            seqs = np.arange(seq_base, seq_base + n, dtype=np.int64)
            seq_base += n
            sup.dispatch(kind, delivered, seqs)

        lifecycle = getattr(detector, "lifecycle", None)
        empty = records[:0]
        for start in range(0, records.shape[0], poll_every):
            chunk = records[start : start + poll_every]
            delivered = (
                injector.transform_batch(chunk) if injector is not None
                else chunk
            )
            if chunk.shape[0] == poll_every:
                # Slice + barrier travel as one CYCLE frame per shard.
                dispatch(FRAME_CYCLE, delivered)
                if lifecycle is not None:
                    # Drift check on the same delivered slice the
                    # single-process loop hands its manager; a swap
                    # decided here broadcasts at this CYCLE boundary so
                    # every shard switches before the next cycle.
                    cmd = lifecycle.on_slice(delivered)
                    if cmd is not None:
                        sup.broadcast_swap(cmd.epoch, cmd.blob)
            elif delivered.shape[0]:
                dispatch(FRAME_DATA, delivered)
        if injector is not None:
            flushed = injector.transform_flush()
            if flushed.shape[0]:
                dispatch(FRAME_DATA, flushed)
        dispatch(FRAME_EOF, empty)

        shard_results = sup.collect()
        sup.join_all()

        db = detector.db
        # Merge the streamed result blocks sorted by (seq, shard) —
        # lexsort keys are listed least-significant first.
        packed_by_shard = [
            sup.shard_packed(shard) for shard in range(n_shards)
        ]
        if n_shards == 1:
            merged_packed = packed_by_shard[0]
            order = np.argsort(merged_packed["seq"], kind="stable")
            merged_packed = merged_packed[order]
        else:
            all_packed = np.concatenate(packed_by_shard)
            shard_col = np.repeat(
                np.arange(n_shards), [p.shape[0] for p in packed_by_shard]
            )
            order = np.lexsort((shard_col, all_packed["seq"]))
            merged_packed = all_packed[order]
        # Bulk append (store_prediction is a plain append): the
        # mitigation flow tier already ran on the worker that owns each
        # flow; absorb_run below fast-forwards the coordinator's flow
        # cursor past this merged log.
        db.predictions.extend(unpack_predictions(merged_packed))
        detector.shard_stats = [stats for _, stats, _ in shard_results]
        detector.supervision_stats = sup.stats()
        mitigation = getattr(detector, "mitigation", None)
        if mitigation is not None:
            worker_actions: List[Any] = []
            worker_mitigation_stats: List[dict] = []
            for _packed, stats, actions in shard_results:
                if actions:
                    worker_actions.extend(actions)
                shard_mit = (
                    stats.get("mitigation") if isinstance(stats, dict) else None
                )
                if shard_mit:
                    worker_mitigation_stats.append(shard_mit)
            mitigation.absorb_run(
                worker_actions, worker_mitigation_stats,
                lossy=sup.lossy_recoveries,
            )
            # Episode tier over the merged (seq, key)-sorted log — the
            # same input sequence for every worker count.
            mitigation.finish_run(db, lossy=0)
        return db
    finally:
        sup.shutdown()
