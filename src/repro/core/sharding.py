"""Shard-parallel execution of the detection mechanism.

The single-process detector tops out at one core; AmLight-scale rates
(80 M packets/minute, §V) need horizontal scaling.  This module adds it
without touching the per-flow math: telemetry is partitioned by the
*canonical five-tuple* hash (:func:`~repro.features.keys.shard_arrays`),
so every flow's entire packet sequence — and therefore all of its state:
Welford moments, dirty stamps, sliding decision window — lives on exactly
one worker.  Each worker runs a full, ordinary
:class:`~repro.core.mechanism.AutomatedDDoSDetector` over its shard of
the stream; flow-state disjointness is what makes the merged output
*result-identical* to a single-process batched run.

Data plane
----------
One :class:`~repro.common.buffers.SharedRing` per worker.  The
coordinator packs delivered telemetry into ring slots — the raw record
bytes plus a global sequence number and a ``kind`` tag — so the hot path
never pickles.  Control flows in-band through the same ring:

* ``kind=DATA``  — one telemetry record, carrying its global ``seq``;
* ``kind=CYCLE`` — a poll-cycle barrier: the coordinator emits one to
  every ring at each ``poll_every`` boundary of the *original* stream,
  and the worker runs exactly one CentralServer cycle per marker.  That
  reproduces the single-process cycle cadence, so each flow sees the
  same sequence of (packets folded) → (poll) → (predict) transitions
  for any worker count;
* ``kind=EOF``   — end of stream: the worker drains its backlog, packs
  its prediction log into a structured array, ships it back over a
  pipe, and exits.

Fault injection runs at the coordinator on the *unified* stream
(:meth:`~repro.resilience.chaos.FaultInjector.transform_batch`), before
sequence numbers are assigned and before partitioning — a chaos replay
is a property of the run, not of the worker count.

Determinism
-----------
The merged log is sorted by ``(seq, shard)``.  ``seq`` is the record's
index in the delivered stream and every delivered record registers
exactly one update, so the order is total and identical to the
single-process run's — the shard-equivalence suite asserts byte-equal
digests over the deterministic entry fields for shards ∈ {1, 2, 4},
clean and under chaos.  Wall-clock stamps are per-process and excluded
from the digest (latency *measurement* still works per worker; latency
*identity* across process boundaries is meaningless).

Equivalence holds in the no-backlog regime (``cycle_budget`` at least
the updates a slice can register): a binding budget sheds different
tails in different partitions, just as it sheds different tails under
different wall-clock speeds in a single process.  A shared ``max_flows``
cap is likewise per-worker in sharded mode.
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

import numpy as np

from repro.common.buffers import SharedRing
from repro.features.keys import canonical_key_arrays, shard_arrays

from .database import FlowDatabase, PredictionEntry

if TYPE_CHECKING:
    from multiprocessing.connection import Connection

    from .mechanism import AutomatedDDoSDetector

__all__ = [
    "run_sharded",
    "prediction_log_digest",
    "pack_predictions",
    "unpack_predictions",
]

#: Slot tags (in-band control protocol).
KIND_DATA = 0
KIND_CYCLE = 1
KIND_EOF = 2

#: Result-array schema a worker ships back: the deterministic
#: PredictionEntry fields plus both wall stamps (for per-worker latency
#: stats).  Votes travel as a bitmask + count; ``final`` uses -1 for the
#: not-yet-decided ``None``.
RESULT_DTYPE = np.dtype([
    ("k0", "i8"), ("k1", "i8"), ("k2", "i8"), ("k3", "i8"), ("k4", "i8"),
    ("ts_registered_ns", "i8"),
    ("wall_registered_ns", "i8"),
    ("wall_predicted_ns", "i8"),
    ("label", "i1"),
    ("votes_mask", "u8"),
    ("votes_n", "i1"),
    ("final", "i1"),
    ("seq", "i8"),
])


def slot_dtype_for(record_dtype: np.dtype) -> np.dtype:
    """Ring-slot dtype: control header + the raw record fields."""
    return np.dtype([("kind", "i8"), ("seq", "i8")] + record_dtype.descr)


# ---------------------------------------------------------------------------
# prediction-log packing (worker → coordinator, and digests)
# ---------------------------------------------------------------------------
def pack_predictions(entries: List[PredictionEntry]) -> np.ndarray:
    """Pack a prediction log into :data:`RESULT_DTYPE` rows."""
    out = np.zeros(len(entries), dtype=RESULT_DTYPE)
    for i, e in enumerate(entries):
        row = out[i]
        row["k0"], row["k1"], row["k2"], row["k3"], row["k4"] = e.key
        row["ts_registered_ns"] = e.ts_registered_ns
        row["wall_registered_ns"] = e.wall_registered_ns
        row["wall_predicted_ns"] = e.wall_predicted_ns
        row["label"] = e.label
        mask = 0
        for b, v in enumerate(e.votes):
            mask |= (int(v) & 1) << b
        row["votes_mask"] = mask
        row["votes_n"] = len(e.votes)
        row["final"] = -1 if e.final_decision is None else int(e.final_decision)
        row["seq"] = e.seq
    return out


def unpack_predictions(packed: np.ndarray) -> List[PredictionEntry]:
    """Inverse of :func:`pack_predictions`."""
    fast = PredictionEntry.fast
    out: List[PredictionEntry] = []
    for row in packed:
        mask = int(row["votes_mask"])
        votes = tuple((mask >> b) & 1 for b in range(int(row["votes_n"])))
        final = int(row["final"])
        out.append(fast(
            (int(row["k0"]), int(row["k1"]), int(row["k2"]),
             int(row["k3"]), int(row["k4"])),
            int(row["ts_registered_ns"]),
            int(row["wall_registered_ns"]),
            int(row["wall_predicted_ns"]),
            int(row["label"]),
            votes,
            None if final < 0 else final,
            int(row["seq"]),
        ))
    return out


def prediction_log_digest(db: FlowDatabase) -> str:
    """SHA-256 over the run's *deterministic* prediction outcome.

    Entries are canonically ordered by ``(seq, key)`` and serialized
    over the fields that must agree across execution modes: flow key,
    telemetry timestamp, label, votes, final decision, and seq.  Wall
    stamps are excluded — they come from per-process clocks.  Two runs
    are result-identical iff their digests match.
    """
    lines = []
    for e in sorted(db.predictions, key=lambda e: (e.seq, e.key)):
        lines.append(
            f"{e.key}|{e.ts_registered_ns}|{e.label}|{e.votes}|"
            f"{e.final_decision}|{e.seq}"
        )
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


# ---------------------------------------------------------------------------
# worker
# ---------------------------------------------------------------------------
def _extract_records(slab: np.ndarray, record_dtype: np.dtype) -> np.ndarray:
    """Field-wise copy of the payload columns out of a slot run."""
    out = np.empty(slab.shape[0], dtype=record_dtype)
    for name in record_dtype.names:
        out[name] = slab[name]
    return out


def _shard_worker_main(spec: Dict[str, Any], conn: "Connection") -> None:
    """Worker entry point: consume one ring until EOF, ship results.

    ``spec`` is a plain picklable dict (spawn-compatible even though the
    default start method is fork): ring coordinates, the trained bundle,
    and the detector configuration.  The worker runs a completely
    ordinary batched detector — sharding lives entirely outside it.
    """
    # Local import: the mechanism module imports this one.
    from .mechanism import AutomatedDDoSDetector

    record_dtype = np.dtype(spec["record_dtype"])
    slot_dtype = slot_dtype_for(record_dtype)
    ring = SharedRing.attach(str(spec["ring_name"]), slot_dtype,
                             int(spec["capacity"]))
    det = AutomatedDDoSDetector(
        bundle=spec["bundle"], batched=True, **spec["config"]
    )
    cycle_budget = int(spec["cycle_budget"])
    timeout_s = float(spec["idle_timeout_s"])

    def feed(run: np.ndarray) -> None:
        if run.shape[0]:
            det.collection.feed_batch(
                _extract_records(run, record_dtype),
                seqs=run["seq"].astype(np.int64),
            )

    try:
        done = False
        while not done:
            slab = ring.pop(timeout=timeout_s)
            if slab.shape[0] == 0:
                raise TimeoutError(
                    f"shard {spec['shard']} starved for {timeout_s:.0f}s"
                )
            kinds = slab["kind"]
            pos = 0
            for m in np.flatnonzero(kinds != KIND_DATA).tolist():
                feed(slab[pos:m])
                pos = m + 1
                if kinds[m] == KIND_CYCLE:
                    det.central.cycle(max_updates=cycle_budget)
                else:  # KIND_EOF
                    det.central.drain(batch=cycle_budget)
                    done = True
                    break
            if not done:
                feed(slab[pos:])
        conn.send((pack_predictions(det.db.predictions), det.stats()))
    except BaseException as exc:  # noqa: BLE001 - report, then die
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
        raise
    finally:
        conn.close()
        ring.close()


# ---------------------------------------------------------------------------
# coordinator
# ---------------------------------------------------------------------------
def run_sharded(
    detector: "AutomatedDDoSDetector",
    records: np.ndarray,
    n_shards: int,
    poll_every: int = 64,
    cycle_budget: int = 128,
    ring_capacity: Optional[int] = None,
    start_method: str = "fork",
    idle_timeout_s: float = 60.0,
) -> FlowDatabase:
    """Fan a record stream out over ``n_shards`` worker processes.

    The coordinator walks the original stream in ``poll_every`` slices —
    the same slicing as the single-process batched loop — applying the
    detector's fault injector (if any) to each slice, assigning global
    sequence numbers to the delivered rows, partitioning them by
    canonical-key hash, and pushing each partition into its worker's
    ring.  Slice boundaries become CYCLE markers on *every* ring; EOF
    follows the final flush.  Results merge into ``detector.db`` sorted
    by ``(seq, shard)`` and the per-worker stats land on
    ``detector.shard_stats``.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1: {n_shards}")
    if poll_every < 1 or cycle_budget < 1:
        raise ValueError("poll_every and cycle_budget must be >= 1")
    record_dtype = records.dtype
    slot_dtype = slot_dtype_for(record_dtype)
    if ring_capacity is None:
        # Room for several slices per shard so a briefly-stalled worker
        # does not immediately backpressure the coordinator.
        ring_capacity = max(8 * poll_every, 1024)

    ctx = mp.get_context(start_method)
    rings: List[SharedRing] = []
    procs = []
    conns = []
    marker = np.zeros(1, dtype=slot_dtype)

    try:
        for shard in range(n_shards):
            ring = SharedRing(slot_dtype, ring_capacity)
            rings.append(ring)
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            spec = {
                "shard": shard,
                "ring_name": ring.name,
                "capacity": ring_capacity,
                "record_dtype": record_dtype,
                "bundle": detector.bundle,
                "config": detector.worker_config(),
                "cycle_budget": cycle_budget,
                "idle_timeout_s": idle_timeout_s,
            }
            proc = ctx.Process(
                target=_shard_worker_main,
                args=(spec, child_conn),
                name=f"shard-{shard}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            procs.append(proc)
            conns.append(parent_conn)

        injector = detector.fault_injector
        seq_base = 0

        def dispatch(delivered: np.ndarray) -> None:
            nonlocal seq_base
            n = delivered.shape[0]
            if n == 0:
                return
            seqs = np.arange(seq_base, seq_base + n, dtype=np.int64)
            seq_base += n
            shards = shard_arrays(
                *canonical_key_arrays(delivered), n_shards
            )
            for shard in range(n_shards):
                sel = np.flatnonzero(shards == shard)
                if sel.size == 0:
                    continue
                slots = np.zeros(sel.size, dtype=slot_dtype)
                slots["kind"] = KIND_DATA
                slots["seq"] = seqs[sel]
                part = delivered[sel]
                for name in record_dtype.names:
                    slots[name] = part[name]
                rings[shard].push(slots, timeout=idle_timeout_s)

        def broadcast(kind: int) -> None:
            marker["kind"] = kind
            for ring in rings:
                ring.push(marker, timeout=idle_timeout_s)

        for start in range(0, records.shape[0], poll_every):
            chunk = records[start : start + poll_every]
            if injector is not None:
                dispatch(injector.transform_batch(chunk))
            else:
                dispatch(chunk)
            if chunk.shape[0] == poll_every:
                broadcast(KIND_CYCLE)
        if injector is not None:
            dispatch(injector.transform_flush())
        broadcast(KIND_EOF)

        shard_results: List[Tuple[np.ndarray, dict]] = []
        for shard, conn in enumerate(conns):
            msg = conn.recv()
            if isinstance(msg[0], str) and msg[0] == "error":
                raise RuntimeError(f"shard {shard} failed: {msg[1]}")
            shard_results.append(msg)
        for proc in procs:
            proc.join(timeout=idle_timeout_s)

        merged: List[Tuple[int, int, PredictionEntry]] = []
        for shard, (packed, _stats) in enumerate(shard_results):
            for entry in unpack_predictions(packed):
                merged.append((entry.seq, shard, entry))
        merged.sort(key=lambda t: (t[0], t[1]))
        db = detector.db
        for _, _, entry in merged:
            db.store_prediction(entry)
        detector.shard_stats = [stats for _, stats in shard_results]
        return db
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for ring in rings:
            try:
                ring.close()
                ring.unlink()
            except Exception:
                pass
