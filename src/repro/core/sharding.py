"""Shard-parallel execution of the detection mechanism.

The single-process detector tops out at one core; AmLight-scale rates
(80 M packets/minute, §V) need horizontal scaling.  This module adds it
without touching the per-flow math: telemetry is partitioned by the
*canonical five-tuple* hash (:func:`~repro.features.keys.shard_arrays`),
so every flow's entire packet sequence — and therefore all of its state:
Welford moments, dirty stamps, sliding decision window — lives on exactly
one worker.  Each worker runs a full, ordinary
:class:`~repro.core.mechanism.AutomatedDDoSDetector` over its shard of
the stream; flow-state disjointness is what makes the merged output
*result-identical* to a single-process batched run.

Data plane
----------
One :class:`~repro.common.buffers.SharedRing` per worker.  The
coordinator packs delivered telemetry into ring slots — the raw record
bytes plus a global sequence number and a ``kind`` tag — so the hot path
never pickles.  Control flows in-band through the same ring:

* ``kind=DATA``  — one telemetry record, carrying its global ``seq``;
* ``kind=CYCLE`` — a poll-cycle barrier: the coordinator emits one to
  every ring at each ``poll_every`` boundary of the *original* stream,
  and the worker runs exactly one CentralServer cycle per marker.  That
  reproduces the single-process cycle cadence, so each flow sees the
  same sequence of (packets folded) → (poll) → (predict) transitions
  for any worker count;
* ``kind=EOF``   — end of stream: the worker drains its backlog, packs
  its prediction log into a structured array, ships it back over a
  pipe, and exits.

Fault injection runs at the coordinator on the *unified* stream
(:meth:`~repro.resilience.chaos.FaultInjector.transform_batch`), before
sequence numbers are assigned and before partitioning — a chaos replay
is a property of the run, not of the worker count.

Fault tolerance
---------------
The coordinator side is a :class:`Supervisor`: it spawns the workers,
tracks their liveness (exit codes via ``peer_alive`` probes inside ring
waits, missed-heartbeat deadlines for alive-but-hung workers), and
recovers a dead shard without losing the run.  Recovery is
checkpoint + replay:

* every ``checkpoint_every`` CYCLE markers, a worker snapshots its full
  deterministic state (:mod:`repro.core.checkpoint`) and ships the
  content-hashed blob up the pipe;
* the coordinator keeps every pushed slot block in a bounded per-shard
  **replay buffer**, tagged with the number of CYCLE markers broadcast
  before it; a checkpoint at cycle *c* prunes tags ``< c``;
* on death, the ring is :meth:`~repro.common.buffers.SharedRing.reset`,
  a fresh worker is spawned with the last checkpoint blob, and the
  buffered suffix (tags ``>= c``, ending with the original EOF if it
  was already sent) is replayed into the fresh ring.

Because the worker pipeline is deterministic in the delivered slot
sequence, the respawned worker reproduces the dead one's output
bit-for-bit — the merged ``prediction_log_digest`` of a murdered run
equals the unfaulted single-process digest.  A crash that outruns the
replay buffer (the needed suffix was partly dropped to honour the
bound) degrades *loudly*: the shard is marked FAILED on the watchdog,
``lossy_recoveries`` is counted, and the run still completes.

Determinism
-----------
The merged log is sorted by ``(seq, shard)``.  ``seq`` is the record's
index in the delivered stream and every delivered record registers
exactly one update, so the order is total and identical to the
single-process run's — the shard-equivalence suite asserts byte-equal
digests over the deterministic entry fields for shards ∈ {1, 2, 4},
clean and under chaos.  Wall-clock stamps are per-process and excluded
from the digest (latency *measurement* still works per worker; latency
*identity* across process boundaries is meaningless).

Equivalence holds in the no-backlog regime (``cycle_budget`` at least
the updates a slice can register): a binding budget sheds different
tails in different partitions, just as it sheds different tails under
different wall-clock speeds in a single process.  A shared ``max_flows``
cap is likewise per-worker in sharded mode.
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
import os
import time
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.common.buffers import PeerDead, SharedRing
from repro.features.keys import canonical_key_arrays, shard_arrays
from repro.resilience.process_chaos import ProcessChaos

from .checkpoint import restore_detector, snapshot_detector
from .database import FlowDatabase, PredictionEntry

if TYPE_CHECKING:
    from multiprocessing.connection import Connection

    from .mechanism import AutomatedDDoSDetector

__all__ = [
    "Supervisor",
    "run_sharded",
    "prediction_log_digest",
    "pack_predictions",
    "unpack_predictions",
]

#: Slot tags (in-band control protocol).
KIND_DATA = 0
KIND_CYCLE = 1
KIND_EOF = 2

#: Result-array schema a worker ships back: the deterministic
#: PredictionEntry fields plus both wall stamps (for per-worker latency
#: stats).  Votes travel as a bitmask + count; ``final`` uses -1 for the
#: not-yet-decided ``None``.
RESULT_DTYPE = np.dtype([
    ("k0", "i8"), ("k1", "i8"), ("k2", "i8"), ("k3", "i8"), ("k4", "i8"),
    ("ts_registered_ns", "i8"),
    ("wall_registered_ns", "i8"),
    ("wall_predicted_ns", "i8"),
    ("label", "i1"),
    ("votes_mask", "u8"),
    ("votes_n", "i1"),
    ("final", "i1"),
    ("seq", "i8"),
])


def slot_dtype_for(record_dtype: np.dtype) -> np.dtype:
    """Ring-slot dtype: control header + the raw record fields."""
    return np.dtype([("kind", "i8"), ("seq", "i8")] + record_dtype.descr)


# ---------------------------------------------------------------------------
# prediction-log packing (worker → coordinator, and digests)
# ---------------------------------------------------------------------------
def pack_predictions(entries: List[PredictionEntry]) -> np.ndarray:
    """Pack a prediction log into :data:`RESULT_DTYPE` rows."""
    out = np.zeros(len(entries), dtype=RESULT_DTYPE)
    for i, e in enumerate(entries):
        row = out[i]
        row["k0"], row["k1"], row["k2"], row["k3"], row["k4"] = e.key
        row["ts_registered_ns"] = e.ts_registered_ns
        row["wall_registered_ns"] = e.wall_registered_ns
        row["wall_predicted_ns"] = e.wall_predicted_ns
        row["label"] = e.label
        mask = 0
        for b, v in enumerate(e.votes):
            mask |= (int(v) & 1) << b
        row["votes_mask"] = mask
        row["votes_n"] = len(e.votes)
        row["final"] = -1 if e.final_decision is None else int(e.final_decision)
        row["seq"] = e.seq
    return out


def unpack_predictions(packed: np.ndarray) -> List[PredictionEntry]:
    """Inverse of :func:`pack_predictions`."""
    fast = PredictionEntry.fast
    out: List[PredictionEntry] = []
    for row in packed:
        mask = int(row["votes_mask"])
        votes = tuple((mask >> b) & 1 for b in range(int(row["votes_n"])))
        final = int(row["final"])
        out.append(fast(
            (int(row["k0"]), int(row["k1"]), int(row["k2"]),
             int(row["k3"]), int(row["k4"])),
            int(row["ts_registered_ns"]),
            int(row["wall_registered_ns"]),
            int(row["wall_predicted_ns"]),
            int(row["label"]),
            votes,
            None if final < 0 else final,
            int(row["seq"]),
        ))
    return out


def prediction_log_digest(db: FlowDatabase) -> str:
    """SHA-256 over the run's *deterministic* prediction outcome.

    Entries are canonically ordered by ``(seq, key)`` and serialized
    over the fields that must agree across execution modes: flow key,
    telemetry timestamp, label, votes, final decision, and seq.  Wall
    stamps are excluded — they come from per-process clocks.  Two runs
    are result-identical iff their digests match.
    """
    lines = []
    for e in sorted(db.predictions, key=lambda e: (e.seq, e.key)):
        lines.append(
            f"{e.key}|{e.ts_registered_ns}|{e.label}|{e.votes}|"
            f"{e.final_decision}|{e.seq}"
        )
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


# ---------------------------------------------------------------------------
# worker
# ---------------------------------------------------------------------------
def _extract_records(slab: np.ndarray, record_dtype: np.dtype) -> np.ndarray:
    """Field-wise copy of the payload columns out of a slot run."""
    out = np.empty(slab.shape[0], dtype=record_dtype)
    for name in record_dtype.names:
        out[name] = slab[name]
    return out


def _shard_worker_main(spec: Dict[str, Any], conn: "Connection") -> None:
    """Worker entry point: consume one ring until EOF, ship results.

    ``spec`` is a plain picklable dict (spawn-compatible even though the
    default start method is fork): ring coordinates, the trained bundle,
    the detector configuration, and — for supervised runs — the restore
    blob, checkpoint cadence, and any worker-side chaos fault plan.
    The worker runs a completely ordinary batched detector — sharding
    lives entirely outside it.

    Pipe protocol (worker → coordinator, all tuples):

    * ``("hb", cycles_done)`` — liveness ping after every CYCLE marker
      (and every drain round after EOF);
    * ``("checkpoint", cycles_done, last_seq, blob)`` — content-hashed
      state snapshot, every ``checkpoint_every`` markers;
    * ``("result", packed, stats, actions)`` — the shard's prediction
      log plus its mitigation flow-tier action log (None when no
      mitigation subsystem is attached);
    * ``("error", msg)`` — best-effort last words before dying.
    """
    # Local import: the mechanism module imports this one.
    from .mechanism import AutomatedDDoSDetector

    record_dtype = np.dtype(spec["record_dtype"])
    slot_dtype = slot_dtype_for(record_dtype)
    ring = SharedRing.attach(str(spec["ring_name"]), slot_dtype,
                             int(spec["capacity"]))
    det = AutomatedDDoSDetector(
        bundle=spec["bundle"], batched=True, **spec["config"]
    )
    # Mitigation clone: attach BEFORE restore so a checkpointed
    # mitigation payload restores into it.  The spec ships a picklable
    # (factory, config) pair — the factory is a module-level function
    # imported by reference at unpickle time, so core never imports the
    # mitigation layer.
    mitigation_spec = spec.get("mitigation")
    if mitigation_spec is not None:
        factory, mitigation_cfg = mitigation_spec
        factory(mitigation_cfg).attach_to(det)
    cycle_budget = int(spec["cycle_budget"])
    timeout_s = float(spec["idle_timeout_s"])
    checkpoint_every = int(spec.get("checkpoint_every", 0))
    raise_at = int(spec.get("raise_at_cycle", 0))
    hang_at = int(spec.get("hang_at_cycle", 0))
    parent_pid = int(spec.get("parent_pid", 0))

    cycles_done = 0
    last_seq = -1
    restore_blob = spec.get("restore")
    if restore_blob is not None:
        payload = restore_detector(det, restore_blob)
        cycles_done = int(payload["cycles_done"])
        last_seq = int(payload["last_seq"])

    def coordinator_alive() -> bool:
        return os.getppid() == parent_pid

    alive: Optional[Callable[[], bool]] = (
        coordinator_alive if parent_pid else None
    )

    def feed(run: np.ndarray) -> None:
        nonlocal last_seq
        if run.shape[0]:
            seqs = run["seq"].astype(np.int64)
            det.collection.feed_batch(
                _extract_records(run, record_dtype), seqs=seqs
            )
            last_seq = int(seqs[-1])

    try:
        done = False
        while not done:
            slab = ring.pop(timeout=timeout_s, peer_alive=alive)
            if slab.shape[0] == 0:
                raise TimeoutError(
                    f"shard {spec['shard']} starved for {timeout_s:.0f}s"
                )
            kinds = slab["kind"]
            pos = 0
            for m in np.flatnonzero(kinds != KIND_DATA).tolist():
                feed(slab[pos:m])
                pos = m + 1
                if kinds[m] == KIND_CYCLE:
                    det.central.cycle(max_updates=cycle_budget)
                    if det.mitigation is not None:
                        # Flow-tier sweep before the heartbeat/checkpoint
                        # send so snapshots are self-consistent (flow
                        # cursor, action log and predictions aligned).
                        det.mitigation.on_cycle()
                    cycles_done += 1
                    if raise_at and cycles_done == raise_at:
                        raise RuntimeError(
                            f"chaos: raise-in-worker at cycle {cycles_done}"
                        )
                    if hang_at and cycles_done == hang_at:
                        # Simulated livelock: alive, silent, no progress.
                        # Only the supervisor's missed-heartbeat deadline
                        # can end this worker.
                        while True:
                            # repro: allow[DET002] chaos hang loop; killed externally by the supervisor
                            time.sleep(0.05)
                    conn.send(("hb", cycles_done))
                    if checkpoint_every and cycles_done % checkpoint_every == 0:
                        blob = snapshot_detector(det, cycles_done, last_seq)
                        conn.send(("checkpoint", cycles_done, last_seq, blob))
                else:  # KIND_EOF
                    # Manual drain (cycle until no progress) so liveness
                    # pings keep flowing through a long final backlog.
                    while det.central.cycle(max_updates=cycle_budget) > 0:
                        conn.send(("hb", cycles_done))
                    if det.mitigation is not None:
                        det.mitigation.on_cycle()
                    done = True
                    break
            if not done:
                feed(slab[pos:])
        actions = (
            list(det.mitigation.action_log)
            if det.mitigation is not None else None
        )
        conn.send(
            ("result", pack_predictions(det.db.predictions), det.stats(),
             actions)
        )
    except BaseException as exc:  # noqa: BLE001 - report, then die
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
        raise
    finally:
        conn.close()
        ring.close()


# ---------------------------------------------------------------------------
# coordinator / supervision
# ---------------------------------------------------------------------------
class _WorkerHung(RuntimeError):
    """Internal: a worker is alive but missed its heartbeat deadline."""


class Supervisor:
    """Worker lifecycle manager for one sharded run.

    Owns the rings, processes, and pipes; every push to a worker goes
    through :meth:`send`, which (1) records the slot block in the
    shard's bounded replay buffer *before* pushing and (2) waits with
    liveness probes, so a dead consumer surfaces as
    :class:`~repro.common.buffers.PeerDead` (never an infinite
    backpressure hang) and triggers :meth:`recover` in place.

    Parameters
    ----------
    detector :
        The coordinator-side detector (supplies the bundle, the worker
        config recipe, and the watchdog that receives shard lifecycle
        health alerts).
    record_dtype, n_shards, ring_capacity, cycle_budget, idle_timeout_s,
    start_method :
        Run layout, as in :func:`run_sharded`.
    checkpoint_every : int
        CYCLE markers between worker checkpoints; 0 disables
        checkpointing (recovery then replays the whole stream).
    replay_buffer_records : int
        Per-shard replay-buffer bound in slots.  Oldest blocks are
        dropped (and counted) past the bound; a recovery that needed a
        dropped block is *lossy* and degrades loudly.
    heartbeat_timeout_s : float
        An alive worker that neither messages nor consumes ring slots
        for this long (while the coordinator is waiting on it) is
        declared hung, killed, and recovered.
    process_chaos : ProcessChaos, optional
        Worker-kill plan (initial spawns only; respawns are never
        re-targeted).
    max_respawns : int
        Per-shard respawn budget; exceeding it aborts the run (a shard
        that keeps dying is a systemic failure, not a transient one).
    clock : callable() -> int, optional
        Monotonic ns source for heartbeat deadlines and restore-latency
        measurement; injectable for deterministic tests.
    """

    def __init__(
        self,
        detector: "AutomatedDDoSDetector",
        record_dtype: np.dtype,
        n_shards: int,
        ring_capacity: int,
        cycle_budget: int,
        idle_timeout_s: float,
        start_method: str = "fork",
        checkpoint_every: int = 16,
        replay_buffer_records: Optional[int] = None,
        heartbeat_timeout_s: float = 30.0,
        process_chaos: Optional[ProcessChaos] = None,
        max_respawns: int = 3,
        clock: Optional[Callable[[], int]] = None,
    ) -> None:
        self.detector = detector
        self.record_dtype = record_dtype
        self.slot_dtype = slot_dtype_for(record_dtype)
        self.n_shards = int(n_shards)
        self.ring_capacity = int(ring_capacity)
        self.cycle_budget = int(cycle_budget)
        self.idle_timeout_s = float(idle_timeout_s)
        self.checkpoint_every = int(checkpoint_every)
        if replay_buffer_records is None:
            # Default bound: several checkpoint intervals of slots, so a
            # clean run never outruns it even if every record lands on
            # one shard (checkpoints prune the buffer as they arrive).
            per_interval = max(self.checkpoint_every, 1) * 64 + 64
            replay_buffer_records = max(4 * per_interval, 4096)
        self.replay_buffer_records = int(replay_buffer_records)
        self.heartbeat_timeout_s = float(heartbeat_timeout_s)
        self.process_chaos = process_chaos
        self.max_respawns = int(max_respawns)
        self.clock: Callable[[], int] = (
            clock if clock is not None
            else time.monotonic_ns  # repro: allow[DET002] injectable default; supervision deadlines are wall-clock by nature
        )
        self._ctx = mp.get_context(start_method)
        self.rings: List[SharedRing] = []
        self.procs: List[Any] = []
        self.conns: List[Any] = []
        # Replay buffer: per shard, list of (tag, slots) where tag is
        # the number of CYCLE markers broadcast before the block.
        self._replay: List[List[Tuple[int, np.ndarray]]] = []
        self._replay_size: List[int] = []
        self._max_dropped_tag: List[int] = []
        # Last received checkpoint per shard: (cycle, last_seq, blob).
        self._checkpoints: List[Optional[Tuple[int, int, bytes]]] = []
        self._last_error: List[str] = []
        self._results: List[Optional[Tuple[np.ndarray, dict, Any]]] = []
        self._progress_ns: List[int] = []
        self._respawns: List[int] = []
        self.cycles_sent = 0
        # Counters for mechanism.stats().
        self.workers_died = 0
        self.workers_respawned = 0
        self.checkpoints_taken = 0
        self.lossy_recoveries = 0
        self.replay_dropped_records = 0
        self.restore_latencies_s: List[float] = []

    # ------------------------------------------------------------------
    # spawning
    # ------------------------------------------------------------------
    def _mitigation_spec(self) -> Optional[Tuple[Any, Dict[str, Any]]]:
        """Picklable worker recipe for the attached mitigation subsystem
        (duck-typed — the controller lives in a higher layer)."""
        mitigation = getattr(self.detector, "mitigation", None)
        if mitigation is None:
            return None
        return mitigation.worker_spec()

    def _spawn(
        self, shard: int, restore: Optional[bytes], initial: bool = False
    ) -> None:
        """(Re)start one worker process on this shard's ring.

        ``restore`` carries the checkpoint blob for respawns (``None``
        when the shard died before its first checkpoint — the worker
        then starts fresh and the coordinator replays everything).
        Chaos fault plans are armed only on the ``initial`` spawn:
        re-arming a raise/hang on a respawn would crash-loop recovery.
        """
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        raise_at = hang_at = 0
        if initial and self.process_chaos is not None:
            raise_at, hang_at = self.process_chaos.worker_fault(shard)
        spec: Dict[str, Any] = {
            "shard": shard,
            "ring_name": self.rings[shard].name,
            "capacity": self.ring_capacity,
            "record_dtype": self.record_dtype,
            "bundle": self.detector.bundle,
            "config": self.detector.worker_config(),
            "cycle_budget": self.cycle_budget,
            "idle_timeout_s": self.idle_timeout_s,
            "checkpoint_every": self.checkpoint_every,
            "restore": restore,
            "raise_at_cycle": raise_at,
            "hang_at_cycle": hang_at,
            "parent_pid": os.getpid(),
            "mitigation": self._mitigation_spec(),
        }
        proc = self._ctx.Process(
            target=_shard_worker_main,
            args=(spec, child_conn),
            name=f"shard-{shard}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self.procs[shard] = proc
        self.conns[shard] = parent_conn
        self._progress_ns[shard] = self.clock()

    def start(self) -> None:
        """Create the rings and launch every shard's initial worker."""
        for shard in range(self.n_shards):
            self.rings.append(SharedRing(self.slot_dtype, self.ring_capacity))
            self.procs.append(None)
            self.conns.append(None)
            self._replay.append([])
            self._replay_size.append(0)
            self._max_dropped_tag.append(-1)
            self._checkpoints.append(None)
            self._last_error.append("")
            self._results.append(None)
            self._progress_ns.append(0)
            self._respawns.append(0)
            self._spawn(shard, restore=None, initial=True)

    # ------------------------------------------------------------------
    # pipe pumping (heartbeats, checkpoints, errors, results)
    # ------------------------------------------------------------------
    def _handle(self, shard: int, msg: Tuple[Any, ...]) -> None:
        self._progress_ns[shard] = self.clock()
        kind = msg[0]
        if kind == "hb":
            pass
        elif kind == "checkpoint":
            cycle, last_seq, blob = int(msg[1]), int(msg[2]), msg[3]
            self._checkpoints[shard] = (cycle, last_seq, blob)
            self.checkpoints_taken += 1
            # Prune replay entries the checkpoint now covers.
            buf = self._replay[shard]
            keep = 0
            while keep < len(buf) and buf[keep][0] < cycle:
                self._replay_size[shard] -= int(buf[keep][1].shape[0])
                keep += 1
            if keep:
                del buf[:keep]
        elif kind == "result":
            self._results[shard] = (
                msg[1], msg[2], msg[3] if len(msg) > 3 else None
            )
        elif kind == "error":
            self._last_error[shard] = str(msg[1])

    def _pump(self) -> None:
        """Drain every worker pipe without blocking.

        Called from ring-wait loops and the collect loop: keeps
        heartbeats fresh, prunes replay buffers as checkpoints land, and
        — critically — unblocks a worker stuck sending a large
        checkpoint blob while the coordinator is itself blocked pushing
        into that worker's full ring.
        """
        for shard, conn in enumerate(self.conns):
            if conn is None or self._results[shard] is not None:
                continue
            try:
                while conn.poll(0):
                    self._handle(shard, conn.recv())
            except (EOFError, OSError):
                continue  # worker died mid-send; liveness probes handle it

    def _stale(self, shard: int) -> bool:
        elapsed_s = (self.clock() - self._progress_ns[shard]) / 1e9
        return elapsed_s > self.heartbeat_timeout_s

    # ------------------------------------------------------------------
    # guarded push + recovery
    # ------------------------------------------------------------------
    def _buffer(self, shard: int, slots: np.ndarray, tag: int) -> None:
        """Append a block to the shard's replay buffer, enforcing the
        bound by dropping oldest blocks (loudly counted)."""
        buf = self._replay[shard]
        buf.append((tag, slots))
        self._replay_size[shard] += int(slots.shape[0])
        while self._replay_size[shard] > self.replay_buffer_records and len(buf) > 1:
            old_tag, old_slots = buf.pop(0)
            self._replay_size[shard] -= int(old_slots.shape[0])
            self.replay_dropped_records += int(old_slots.shape[0])
            if old_tag > self._max_dropped_tag[shard]:
                self._max_dropped_tag[shard] = old_tag

    def _push(self, shard: int, slots: np.ndarray) -> None:
        """Push with liveness probes; raises PeerDead/_WorkerHung."""
        ring = self.rings[shard]
        proc = self.procs[shard]
        fill_before = len(ring)

        def on_wait() -> None:
            nonlocal fill_before
            self._pump()
            fill = len(ring)
            if fill != fill_before:
                fill_before = fill
                self._progress_ns[shard] = self.clock()
            elif self._stale(shard):
                raise _WorkerHung(
                    f"shard {shard} consumed nothing for "
                    f"{self.heartbeat_timeout_s:.1f}s with a full ring"
                )

        ring.push(
            slots,
            timeout=self.idle_timeout_s,
            peer_alive=proc.is_alive,
            on_wait=on_wait,
        )

    def send(self, shard: int, slots: np.ndarray, tag: int) -> None:
        """Record a slot block in the replay buffer, then push it.

        On consumer death (``PeerDead``), a missed heartbeat deadline,
        or a full-ring timeout, the shard is recovered in place — the
        current block is already buffered, so the recovery replay
        delivers it and this call returns with the stream intact.
        """
        self._buffer(shard, slots, tag)
        try:
            self._push(shard, slots)
        except PeerDead:
            self.recover(shard, self._death_reason(shard))
        except (_WorkerHung, TimeoutError) as exc:
            self._kill(shard)
            self.recover(shard, f"hung: {exc}")

    def _death_reason(self, shard: int) -> str:
        proc = self.procs[shard]
        proc.join(timeout=self.idle_timeout_s)
        reason = f"exitcode {proc.exitcode}"
        if self._last_error[shard]:
            reason += f"; last error: {self._last_error[shard]}"
        return reason

    def _kill(self, shard: int) -> None:
        proc = self.procs[shard]
        try:
            proc.kill()
        except (ProcessLookupError, AttributeError):
            pass
        proc.join(timeout=self.idle_timeout_s)

    def recover(self, shard: int, reason: str) -> None:
        """Respawn a dead shard from its last checkpoint and replay the
        buffered suffix.  Emits DEGRADED → HEALTHY watchdog transitions
        (FAILED instead, when the crash outran the replay buffer)."""
        t0 = self.clock()
        watchdog = self.detector.watchdog
        module = f"shard-{shard}"
        self.workers_died += 1
        watchdog.degraded(module, f"worker died ({reason})")
        self._kill(shard)  # reap if not already gone
        try:
            self.conns[shard].close()
        except Exception:
            pass

        ckpt = self._checkpoints[shard]
        cycle, last_seq = (ckpt[0], ckpt[1]) if ckpt is not None else (0, -1)
        blob = ckpt[2] if ckpt is not None else None
        lossy = self._max_dropped_tag[shard] >= cycle
        if lossy:
            self.lossy_recoveries += 1
            watchdog.failed(
                module,
                f"crash outran the replay buffer: checkpoint cycle {cycle} "
                f"needs blocks up to tag {self._max_dropped_tag[shard]} that "
                "were dropped; recovered state will diverge",
            )

        for attempt in range(self.max_respawns):
            self._respawns[shard] += 1
            if self._respawns[shard] > self.max_respawns:
                raise RuntimeError(
                    f"shard {shard} exceeded {self.max_respawns} respawns "
                    f"({reason})"
                )
            # Fresh worker sees an empty ring (discards any partial
            # write the failed push left) and the checkpointed state.
            self.rings[shard].reset()
            self._spawn(shard, restore=blob)
            try:
                for tag, slots in list(self._replay[shard]):
                    if tag >= cycle:
                        self._push(shard, slots)
            except (PeerDead, _WorkerHung, TimeoutError):
                self._kill(shard)
                continue
            break
        else:
            raise RuntimeError(
                f"shard {shard} died {self.max_respawns} times during "
                f"recovery ({reason})"
            )

        self.workers_respawned += 1
        self.restore_latencies_s.append((self.clock() - t0) / 1e9)
        if not lossy:
            watchdog.healthy(
                module,
                f"respawned; restored from checkpoint cycle {cycle} "
                f"(seq {last_seq})",
            )

    # ------------------------------------------------------------------
    # stream driving
    # ------------------------------------------------------------------
    def dispatch(self, delivered: np.ndarray, seqs: np.ndarray) -> None:
        """Partition a delivered slice by canonical-key hash and push
        each partition to its shard (tagged for replay)."""
        n = delivered.shape[0]
        if n == 0:
            return
        shards = shard_arrays(*canonical_key_arrays(delivered), self.n_shards)
        for shard in range(self.n_shards):
            sel = np.flatnonzero(shards == shard)
            if sel.size == 0:
                continue
            slots = np.zeros(sel.size, dtype=self.slot_dtype)
            slots["kind"] = KIND_DATA
            slots["seq"] = seqs[sel]
            part = delivered[sel]
            for name in self.record_dtype.names:
                slots[name] = part[name]
            self.send(shard, slots, tag=self.cycles_sent)
        self._pump()

    def broadcast(self, kind: int) -> None:
        """Push a control marker to every ring; CYCLE markers advance
        the replay tag and trigger any scheduled SIGKILL chaos."""
        marker = np.zeros(1, dtype=self.slot_dtype)
        marker["kind"] = kind
        tag = self.cycles_sent
        for shard in range(self.n_shards):
            self.send(shard, marker, tag=tag)
        if kind == KIND_CYCLE:
            self.cycles_sent += 1
            if self.process_chaos is not None:
                for shard in self.process_chaos.sigkills_at(self.cycles_sent):
                    self._kill(shard)
        self._pump()

    # ------------------------------------------------------------------
    # result collection
    # ------------------------------------------------------------------
    def collect(self) -> List[Tuple[np.ndarray, dict, Any]]:
        """Wait for every shard's result, recovering any worker that
        dies or hangs on the way out."""
        for shard in range(self.n_shards):
            while self._results[shard] is None:
                self._pump()
                if self._results[shard] is not None:
                    break
                proc = self.procs[shard]
                if not proc.is_alive():
                    self._pump()  # drain anything sent before death
                    if self._results[shard] is not None:
                        break
                    self.recover(shard, self._death_reason(shard))
                elif self._stale(shard):
                    self._kill(shard)
                    self.recover(
                        shard,
                        f"missed heartbeat deadline "
                        f"({self.heartbeat_timeout_s:.1f}s) while draining",
                    )
                else:
                    time.sleep(SharedRing.WAIT_SLEEP_S)  # repro: allow[DET002] coordinator wait loop; bounded by liveness probes above
        out: List[Tuple[np.ndarray, dict, Any]] = []
        for shard in range(self.n_shards):
            result = self._results[shard]
            assert result is not None
            out.append(result)
        return out

    def join_all(self) -> None:
        for proc in self.procs:
            if proc is not None:
                proc.join(timeout=self.idle_timeout_s)

    # ------------------------------------------------------------------
    # teardown + observability
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Terminate anything still alive and destroy the rings."""
        for proc in self.procs:
            if proc is not None and proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for ring in self.rings:
            try:
                ring.close()
                ring.unlink()
            except Exception:
                pass

    def stats(self) -> Dict[str, object]:
        """Supervision counters for the mechanism's stats surface."""
        return {
            "workers_died": self.workers_died,
            "workers_respawned": self.workers_respawned,
            "checkpoints_taken": self.checkpoints_taken,
            "lossy_recoveries": self.lossy_recoveries,
            "replay_dropped_records": self.replay_dropped_records,
            "restore_latencies_s": list(self.restore_latencies_s),
        }


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------
def run_sharded(
    detector: "AutomatedDDoSDetector",
    records: np.ndarray,
    n_shards: int,
    poll_every: int = 64,
    cycle_budget: int = 128,
    ring_capacity: Optional[int] = None,
    start_method: str = "fork",
    idle_timeout_s: float = 60.0,
    checkpoint_every: int = 16,
    replay_buffer_records: Optional[int] = None,
    heartbeat_timeout_s: float = 30.0,
    process_chaos: Optional[ProcessChaos] = None,
    max_respawns: int = 3,
) -> FlowDatabase:
    """Fan a record stream out over ``n_shards`` supervised workers.

    The coordinator walks the original stream in ``poll_every`` slices —
    the same slicing as the single-process batched loop — applying the
    detector's fault injector (if any) to each slice, assigning global
    sequence numbers to the delivered rows, partitioning them by
    canonical-key hash, and pushing each partition into its worker's
    ring.  Slice boundaries become CYCLE markers on *every* ring; EOF
    follows the final flush.  Results merge into ``detector.db`` sorted
    by ``(seq, shard)``; per-worker stats land on
    ``detector.shard_stats`` and supervision counters on
    ``detector.supervision_stats``.

    Worker crashes (including any scheduled by ``process_chaos``) are
    recovered transparently via checkpoint + replay — see
    :class:`Supervisor`; the merged log is byte-identical to an
    unfaulted run unless the crash outran the replay buffer, which is
    loudly surfaced instead.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1: {n_shards}")
    if poll_every < 1 or cycle_budget < 1:
        raise ValueError("poll_every and cycle_budget must be >= 1")
    if ring_capacity is None:
        # Room for several slices per shard so a briefly-stalled worker
        # does not immediately backpressure the coordinator.
        ring_capacity = max(8 * poll_every, 1024)

    sup = Supervisor(
        detector,
        record_dtype=records.dtype,
        n_shards=n_shards,
        ring_capacity=ring_capacity,
        cycle_budget=cycle_budget,
        idle_timeout_s=idle_timeout_s,
        start_method=start_method,
        checkpoint_every=checkpoint_every,
        replay_buffer_records=replay_buffer_records,
        heartbeat_timeout_s=heartbeat_timeout_s,
        process_chaos=process_chaos,
        max_respawns=max_respawns,
    )
    try:
        sup.start()
        injector = detector.fault_injector
        seq_base = 0

        def dispatch(delivered: np.ndarray) -> None:
            nonlocal seq_base
            n = delivered.shape[0]
            if n == 0:
                return
            seqs = np.arange(seq_base, seq_base + n, dtype=np.int64)
            seq_base += n
            sup.dispatch(delivered, seqs)

        for start in range(0, records.shape[0], poll_every):
            chunk = records[start : start + poll_every]
            if injector is not None:
                dispatch(injector.transform_batch(chunk))
            else:
                dispatch(chunk)
            if chunk.shape[0] == poll_every:
                sup.broadcast(KIND_CYCLE)
        if injector is not None:
            dispatch(injector.transform_flush())
        sup.broadcast(KIND_EOF)

        shard_results = sup.collect()
        sup.join_all()

        merged: List[Tuple[int, int, PredictionEntry]] = []
        for shard, (packed, _stats, _actions) in enumerate(shard_results):
            for entry in unpack_predictions(packed):
                merged.append((entry.seq, shard, entry))
        merged.sort(key=lambda t: (t[0], t[1]))
        db = detector.db
        # Plain stores: the mitigation flow tier already ran on the
        # worker that owns each flow; absorb_run below fast-forwards the
        # coordinator's flow cursor past this merged log.
        for _, _, entry in merged:
            db.store_prediction(entry)
        detector.shard_stats = [stats for _, stats, _ in shard_results]
        detector.supervision_stats = sup.stats()
        mitigation = getattr(detector, "mitigation", None)
        if mitigation is not None:
            worker_actions: List[Any] = []
            worker_mitigation_stats: List[dict] = []
            for _packed, stats, actions in shard_results:
                if actions:
                    worker_actions.extend(actions)
                shard_mit = (
                    stats.get("mitigation") if isinstance(stats, dict) else None
                )
                if shard_mit:
                    worker_mitigation_stats.append(shard_mit)
            mitigation.absorb_run(
                worker_actions, worker_mitigation_stats,
                lossy=sup.lossy_recoveries,
            )
            # Episode tier over the merged (seq, key)-sorted log — the
            # same input sequence for every worker count.
            mitigation.finish_run(db, lossy=0)
        return db
    finally:
        sup.shutdown()
