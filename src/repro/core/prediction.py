"""Prediction module (Fig 2, module 4).

Loads the pre-trained models and the scaler coefficients at
initialization (§III-4), then serves per-update predictions: standardize
the incoming feature vector with the *training-time* scaler and run every
panel model on it.  The module never refits anything online — exactly the
paper's design, where training happens offline on replayed captures.

Production hardening on top of the paper's design: **per-model failure
isolation**.  A panel member that raises, or returns a non-binary vote
(a poisoned or corrupted model), accumulates strikes; after
``failure_threshold`` consecutive strikes it is quarantined and the
remaining members keep voting with an adjusted quorum (majority over
the healthy panel).  Only when *every* member is quarantined does the
module refuse to serve, raising :class:`PredictionUnavailableError` so
the caller can shed the update instead of crashing the mechanism.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.ml.scaler import StandardScaler

__all__ = ["PredictionModule", "PredictionUnavailableError"]


class PredictionUnavailableError(RuntimeError):
    """Raised when every panel member is quarantined."""


#: Quarantine callback signature: ``(model_name, reason, n_active_left)``.
QuarantineHook = Callable[[str, str, int], None]

#: Reinstate callback signature: ``(model_name, n_active_now)``.
ReinstateHook = Callable[[str, int], None]


class PredictionModule:
    """Scaler + pre-trained model panel.

    Parameters
    ----------
    scaler : StandardScaler
        Fitted on the training capture.
    models : dict[str, classifier]
        Fitted panel, e.g. ``{"mlp": ..., "rf": ..., "gnb": ...}``
        (the testbed panel of §IV-C3).
    feature_names : sequence of str
        Schema order the feature vectors arrive in; kept for sanity
        checking against the scaler dimensionality.
    failure_threshold : int
        Consecutive per-model failures (exception or non-binary output)
        tolerated before the member is quarantined; a successful
        prediction resets the member's strike count.
    on_quarantine : callable(name, reason, n_active_left), optional
        Observer invoked when a member is quarantined (the mechanism
        wires this to its watchdog).
    on_reinstate : callable(name, n_active_now), optional
        Observer invoked when a quarantined member rejoins the quorum —
        the recovery-side twin of ``on_quarantine``, so the control
        plane sees the HEALTHY transition too.
    """

    def __init__(
        self,
        scaler: StandardScaler,
        models: Dict[str, object],
        feature_names: Sequence[str],
        failure_threshold: int = 3,
        on_quarantine: Optional[QuarantineHook] = None,
        on_reinstate: Optional[ReinstateHook] = None,
    ) -> None:
        if not models:
            raise ValueError("need at least one model")
        if scaler.n_features_ is None:
            raise ValueError("scaler must be fitted")
        if scaler.n_features_ != len(feature_names):
            raise ValueError(
                f"scaler has {scaler.n_features_} features, schema has "
                f"{len(feature_names)}"
            )
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1: {failure_threshold}")
        self.scaler = scaler
        self.models = dict(models)
        self.feature_names = list(feature_names)
        self.failure_threshold = int(failure_threshold)
        self.on_quarantine = on_quarantine
        self.on_reinstate = on_reinstate
        self.predictions_served = 0
        self.model_failures: Dict[str, int] = {name: 0 for name in self.models}
        self.quarantined: Dict[str, str] = {}  # name -> reason
        #: Model-panel generation: 0 is the pretrained panel; each
        #: lifecycle hot swap bumps it.  ``panel_hash`` is the content
        #: hash of the installed panel blob ("" for the pretrained one),
        #: checked on checkpoint restore so a worker can never resume
        #: serving with the wrong generation's models.
        self.panel_epoch = 0
        self.panel_hash = ""

    @property
    def model_names(self) -> List[str]:
        return list(self.models.keys())

    @property
    def active_model_names(self) -> List[str]:
        """Panel members still voting (insertion order preserved)."""
        return [n for n in self.models if n not in self.quarantined]

    # ------------------------------------------------------------------
    # failure isolation
    # ------------------------------------------------------------------
    def _strike(self, name: str, reason: str) -> None:
        self.model_failures[name] += 1
        if self.model_failures[name] >= self.failure_threshold:
            self.quarantine(name, reason)

    def quarantine(self, name: str, reason: str = "operator request") -> None:
        """Remove a member from the voting quorum (idempotent)."""
        if name not in self.models:
            raise KeyError(f"unknown model: {name!r}")
        if name in self.quarantined:
            return
        self.quarantined[name] = reason
        if self.on_quarantine is not None:
            self.on_quarantine(name, reason, len(self.active_model_names))

    def reinstate(self, name: str) -> None:
        """Return a quarantined member to the quorum (e.g. after a
        model reload); clears its strike count.  Unknown names raise
        ``KeyError``, symmetric with :meth:`quarantine` — silently
        accepting a typo here would leave an operator convinced a dead
        member was back in the quorum.  Reinstating a member that is
        not quarantined is an idempotent no-op (no hook fires)."""
        if name not in self.models:
            raise KeyError(f"unknown model: {name!r}")
        was_quarantined = self.quarantined.pop(name, None) is not None
        self.model_failures[name] = 0
        if was_quarantined and self.on_reinstate is not None:
            self.on_reinstate(name, len(self.active_model_names))

    # ------------------------------------------------------------------
    # model lifecycle (hot swap)
    # ------------------------------------------------------------------
    def swap_panel(
        self,
        scaler: StandardScaler,
        models: Dict[str, object],
        epoch: int,
        panel_hash: str,
        feature_names: Optional[Sequence[str]] = None,
    ) -> None:
        """Atomically install a retrained panel (lifecycle hot swap).

        Validates the replacement like the constructor does, then
        replaces scaler + models and **resets the failure-isolation
        state** — strikes and quarantine reasons belong to the outgoing
        generation's models, and carrying them over would quarantine a
        fresh member for its predecessor's sins.  ``epoch`` must
        strictly increase; ``panel_hash`` is the content hash of the
        panel blob the swap was broadcast as.
        """
        names = list(feature_names) if feature_names is not None \
            else self.feature_names
        if not models:
            raise ValueError("need at least one model")
        if scaler.n_features_ is None:
            raise ValueError("scaler must be fitted")
        if scaler.n_features_ != len(names):
            raise ValueError(
                f"scaler has {scaler.n_features_} features, schema has "
                f"{len(names)}"
            )
        if int(epoch) <= self.panel_epoch:
            raise ValueError(
                f"swap epoch must increase: {epoch} <= {self.panel_epoch}"
            )
        self.scaler = scaler
        self.models = dict(models)
        self.feature_names = names
        self.model_failures = {name: 0 for name in self.models}
        self.quarantined = {}
        self.panel_epoch = int(epoch)
        self.panel_hash = str(panel_hash)

    def load_panel(
        self, scaler: StandardScaler, models: Dict[str, object]
    ) -> None:
        """Replace the model objects *without* touching lifecycle state.

        Restore-path twin of :meth:`swap_panel`: a respawned worker's
        checkpoint carries ``panel_epoch``/``panel_hash``/quarantine
        state but not the (immutable) model objects, which the
        supervisor supplies from its panel archive.  The caller is
        responsible for verifying the archive blob's content hash
        against the restored ``panel_hash`` first.
        """
        if not models:
            raise ValueError("need at least one model")
        self.scaler = scaler
        self.models = dict(models)

    def _vote_of(self, name: str, model: object, x: np.ndarray) -> Optional[int]:
        """One member's vote, or None if the member misbehaved."""
        try:
            v = float(model.predict(x)[0])
        except Exception as exc:  # noqa: BLE001 - isolation boundary
            self._strike(name, f"{type(exc).__name__}: {exc}")
            return None
        if not np.isfinite(v) or int(v) not in (0, 1):
            self._strike(name, f"non-binary vote: {v!r}")
            return None
        self.model_failures[name] = 0
        return int(v)

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def predict_one(self, features: np.ndarray) -> np.ndarray:
        """Per-model 0/1 votes for a single feature vector (step ⑤→⑥).

        Returns votes for the *active* panel only; quarantined members
        are excluded from the quorum.
        """
        active = self.active_model_names
        if not active:
            raise PredictionUnavailableError(
                "all panel members quarantined: "
                + "; ".join(f"{n} ({r})" for n, r in self.quarantined.items())
            )
        x = self.scaler.transform(np.asarray(features, dtype=np.float64))[None, :]
        votes: List[int] = []
        for name in active:
            v = self._vote_of(name, self.models[name], x)
            if v is not None:
                votes.append(v)
        if not votes:
            raise PredictionUnavailableError(
                "every active panel member failed this update"
            )
        self.predictions_served += 1
        return np.asarray(votes, dtype=np.int64)

    def predict_batch(self, X: np.ndarray) -> np.ndarray:
        """Per-model votes for a batch; shape (n_samples, n_active).

        A member that raises on the batch takes ``failure_threshold``
        strikes at once (a batch failure is not transient) and its
        column is dropped.
        """
        active = self.active_model_names
        if not active:
            raise PredictionUnavailableError(
                "all panel members quarantined: "
                + "; ".join(f"{n} ({r})" for n, r in self.quarantined.items())
            )
        Xs = self.scaler.transform(np.asarray(X, dtype=np.float64))
        cols = []
        for name in active:
            try:
                cols.append(np.asarray(self.models[name].predict(Xs), dtype=np.int64))
            except Exception as exc:  # noqa: BLE001 - isolation boundary
                self.model_failures[name] = self.failure_threshold
                self.quarantine(name, f"{type(exc).__name__}: {exc}")
        if not cols:
            raise PredictionUnavailableError(
                "every active panel member failed the batch"
            )
        self.predictions_served += X.shape[0]
        return np.column_stack(cols)

    # ------------------------------------------------------------------
    # checkpoint/restore
    # ------------------------------------------------------------------
    def state_snapshot(self) -> dict:
        """Serving counters + failure-isolation state (strike counts and
        quarantine reasons).  The models and scaler are *not* captured —
        they are immutable after training and travel with the worker
        spec, not the checkpoint."""
        return {
            "predictions_served": self.predictions_served,
            "model_failures": dict(self.model_failures),
            "quarantined": dict(self.quarantined),
            "panel_epoch": self.panel_epoch,
            "panel_hash": self.panel_hash,
        }

    def state_restore(self, state: dict) -> None:
        self.predictions_served = int(state["predictions_served"])
        self.model_failures = dict(state["model_failures"])
        self.quarantined = dict(state["quarantined"])
        self.panel_epoch = int(state.get("panel_epoch", 0))
        self.panel_hash = str(state.get("panel_hash", ""))

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Counters for the mechanism's stats surface; shard workers
        report this dict so the coordinator can aggregate panel health
        across the fleet."""
        return {
            "predictions_served": self.predictions_served,
            "active_models": self.active_model_names,
            "quarantined_models": dict(self.quarantined),
            "model_failures": dict(self.model_failures),
            "panel_epoch": self.panel_epoch,
            "panel_hash": self.panel_hash,
        }
