"""Prediction module (Fig 2, module 4).

Loads the pre-trained models and the scaler coefficients at
initialization (§III-4), then serves per-update predictions: standardize
the incoming feature vector with the *training-time* scaler and run every
panel model on it.  The module never refits anything online — exactly the
paper's design, where training happens offline on replayed captures.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.ml.scaler import StandardScaler

__all__ = ["PredictionModule"]


class PredictionModule:
    """Scaler + pre-trained model panel.

    Parameters
    ----------
    scaler : StandardScaler
        Fitted on the training capture.
    models : dict[str, classifier]
        Fitted panel, e.g. ``{"mlp": ..., "rf": ..., "gnb": ...}``
        (the testbed panel of §IV-C3).
    feature_names : sequence of str
        Schema order the feature vectors arrive in; kept for sanity
        checking against the scaler dimensionality.
    """

    def __init__(
        self,
        scaler: StandardScaler,
        models: Dict[str, object],
        feature_names: Sequence[str],
    ) -> None:
        if not models:
            raise ValueError("need at least one model")
        if scaler.n_features_ is None:
            raise ValueError("scaler must be fitted")
        if scaler.n_features_ != len(feature_names):
            raise ValueError(
                f"scaler has {scaler.n_features_} features, schema has "
                f"{len(feature_names)}"
            )
        self.scaler = scaler
        self.models = dict(models)
        self.feature_names = list(feature_names)
        self.predictions_served = 0

    @property
    def model_names(self) -> List[str]:
        return list(self.models.keys())

    def predict_one(self, features: np.ndarray) -> np.ndarray:
        """Per-model 0/1 votes for a single feature vector (step ⑤→⑥)."""
        x = self.scaler.transform(np.asarray(features, dtype=np.float64))[None, :]
        votes = np.empty(len(self.models), dtype=np.int64)
        for i, model in enumerate(self.models.values()):
            votes[i] = int(model.predict(x)[0])
        self.predictions_served += 1
        return votes

    def predict_batch(self, X: np.ndarray) -> np.ndarray:
        """Per-model votes for a batch; shape (n_samples, n_models)."""
        Xs = self.scaler.transform(np.asarray(X, dtype=np.float64))
        cols = [np.asarray(m.predict(Xs), dtype=np.int64) for m in self.models.values()]
        self.predictions_served += X.shape[0]
        return np.column_stack(cols)
