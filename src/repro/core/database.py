"""The mechanism's database (Fig 2 center).

Stores exactly what the paper's database stores: one record per Flow ID
(owned by the Data Processor's :class:`~repro.features.flow_table.FlowTable`),
plus the prediction log the Data Processor writes back (label, timestamp,
prediction latency — steps ③ and ⑧ of Fig 2).

The CentralServer "continuously communicates with the database to check
whether there is an update in the records" (§III-3).  We model that poll
faithfully: :meth:`poll_updates` *scans the resident flow records* for a
dirty flag rather than consuming an efficient queue.  The scan cost is
proportional to the number of live flows — the very scaling bottleneck
the paper observes when benign traffic (many concurrent flows) drives
prediction latency up (Table VI, §V).  Set ``fast_poll=True`` to use an
indexed dirty-set instead, which is the obvious production fix and the
subject of an ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.features.batch import FlowBatch
from repro.features.flow_table import FlowTable

__all__ = ["FlowDatabase", "PredictionEntry"]


@dataclass(frozen=True)
class PredictionEntry:
    """One aggregated prediction stored back into the database (step ⑧).

    ``seq`` is the update's position in the *delivered* telemetry stream
    (post-chaos, pre-shard): packet ``seq`` of the run produced this
    update.  It is the merge key of the sharded execution mode — every
    delivered packet registers exactly one update, so ``seq`` is unique
    per entry and a merge ordered by ``(seq, shard)`` is deterministic
    for any worker count.  Entries created outside a detector run (e.g.
    hand-built in tests) default to ``-1``.

    ``epoch`` is the model-panel generation that served the prediction
    (0 = the pretrained panel; each lifecycle hot swap increments it).
    It makes swap atomicity auditable — in a merged log the epoch column
    must be non-decreasing in cycle order, or some shard served a cycle
    with a mixed panel.  Excluded from the canonical digest, which
    predates it.
    """

    key: tuple
    ts_registered_ns: int
    wall_registered_ns: int
    wall_predicted_ns: int
    label: int
    votes: tuple
    final_decision: Optional[int]
    seq: int = -1
    epoch: int = 0

    @property
    def latency_ns(self) -> int:
        """The paper's *Prediction Latency*: prediction time minus the
        time of the packet's registration."""
        return self.wall_predicted_ns - self.wall_registered_ns

    @classmethod
    def fast(
        cls,
        key: tuple,
        ts_registered_ns: int,
        wall_registered_ns: int,
        wall_predicted_ns: int,
        label: int,
        votes: tuple,
        final_decision: Optional[int],
        seq: int = -1,
        epoch: int = 0,
    ) -> "PredictionEntry":
        """Construct without the frozen-dataclass ``__init__`` overhead.

        The batched dispatch path builds one entry per update in a tight
        loop; bypassing the generated ``__init__`` (which funnels every
        field through ``object.__setattr__`` *and* a wrapper frame)
        keeps entry construction visible-but-small in the pipeline
        benchmarks.  Field semantics are identical to the normal
        constructor.
        """
        self = object.__new__(cls)
        d = self.__dict__
        d["key"] = key
        d["ts_registered_ns"] = ts_registered_ns
        d["wall_registered_ns"] = wall_registered_ns
        d["wall_predicted_ns"] = wall_predicted_ns
        d["label"] = label
        d["votes"] = votes
        d["final_decision"] = final_decision
        d["seq"] = seq
        d["epoch"] = epoch
        return self


class FlowDatabase:
    """Flow-record store plus update tracking and prediction log.

    Parameters
    ----------
    flow_table : FlowTable, optional
        Shared with the Data Processor; created if omitted.
    fast_poll : bool
        Use an O(dirty) indexed poll instead of the paper-faithful
        O(live flows) scan.
    """

    def __init__(
        self,
        flow_table: Optional[FlowTable] = None,
        fast_poll: bool = False,
        skip_new_flows: bool = False,
    ) -> None:
        self.flows = flow_table if flow_table is not None else FlowTable()
        self.fast_poll = bool(fast_poll)
        self.skip_new_flows = bool(skip_new_flows)
        # Pending-update bookkeeping.  The dirty dict maps flow key to the
        # registration stamps of not-yet-predicted updates (a flow may
        # receive several packets between polls; each is one update).
        # Each stamp is ``(ts_sim_ns, wall_ns, seq)``.
        self._dirty: Dict[tuple, List[Tuple[int, int, int]]] = {}
        self.predictions: List[PredictionEntry] = []
        # Entries trimmed off the front of ``predictions`` (sharded
        # workers stream each cycle's block to the coordinator and trim
        # it locally, keeping worker memory and checkpoint size
        # O(flows)).  Absolute position i of the run maps to
        # ``predictions[i - predictions_base]``.
        self.predictions_base = 0
        self.updates_registered = 0
        self.polls = 0
        self.records_scanned = 0

    # ------------------------------------------------------------------
    # Data Processor side (steps ③ and ⑧)
    # ------------------------------------------------------------------
    def register_update(
        self, key: tuple, ts_sim_ns: int, wall_ns: int, seq: int = -1
    ) -> None:
        """Mark a flow's record as updated (step ③)."""
        self._dirty.setdefault(key, []).append((ts_sim_ns, wall_ns, seq))
        self.updates_registered += 1

    def register_update_batch(
        self,
        batch: FlowBatch,
        ts_sim_ns: np.ndarray,
        wall_ns: Sequence[int],
        seqs: Optional[Sequence[int]] = None,
    ) -> None:
        """Batched :meth:`register_update` for one grouped telemetry
        slice — one dict probe per *flow* instead of one per packet.

        Pending-update order is kept byte-identical to the scalar path:
        groups are visited in first-occurrence order (so a flow newly
        dirtied by this batch lands in the dirty dict exactly where the
        scalar path would have inserted it) and each group's stamps are
        appended in arrival order.  ``seqs`` carries the per-record
        delivered-stream sequence numbers (``-1`` when absent).
        """
        ts_list = np.asarray(ts_sim_ns).tolist()
        if seqs is None:
            seq_list: Sequence[int] = [-1] * batch.n
        else:
            seq_list = np.asarray(seqs).tolist()
        dirty = self._dirty
        for g in np.argsort(batch.first_pos, kind="stable").tolist():
            rows = batch.group_rows(g).tolist()
            lst = dirty.setdefault(batch.keys[g], [])
            for r in rows:
                lst.append((ts_list[r], wall_ns[r], seq_list[r]))
        self.updates_registered += batch.n

    def store_prediction(self, entry: PredictionEntry) -> None:
        """Persist an aggregated prediction (step ⑧)."""
        self.predictions.append(entry)

    @property
    def predictions_total(self) -> int:
        """Total predictions stored over the run, including any the
        owner has trimmed after shipping them elsewhere."""
        return self.predictions_base + len(self.predictions)

    def trim_predictions(self, n: int) -> None:
        """Drop the oldest ``n`` resident entries, advancing
        :attr:`predictions_base`.  The caller owns durability of the
        trimmed entries (the sharded worker has already streamed them
        to the coordinator)."""
        if n <= 0:
            return
        if n > len(self.predictions):
            raise ValueError(
                f"cannot trim {n} of {len(self.predictions)} resident "
                "predictions"
            )
        del self.predictions[:n]
        self.predictions_base += n

    # ------------------------------------------------------------------
    # CentralServer side (step ④)
    # ------------------------------------------------------------------
    def poll_updates(
        self, limit: Optional[int] = None
    ) -> List[Tuple[tuple, int, int, int]]:
        """Collect pending updates, oldest-first per flow.

        Returns tuples ``(key, ts_sim_ns, wall_registered_ns, seq)``.

        With ``skip_new_flows`` set, records holding a single packet are
        withheld (a literal reading of §III-3's "does not consider new
        entries with new Flow IDs"); their updates stay queued until a
        second packet arrives.  The default predicts on every update
        including the creating packet — the only behaviour consistent
        with Table VI, whose per-type predicted counts cover (and for
        scans/floods roughly equal) the replayed packets, most of which
        belong to one-packet flows.  Under the literal reading those
        flows would never be predicted at all.
        """
        self.polls += 1
        out: List[Tuple[tuple, int, int, int]] = []
        if self.fast_poll:
            candidates = list(self._dirty.keys())
        else:
            # Paper-faithful: walk every resident record looking for
            # dirty ones.  The walk itself is the cost being modeled.
            candidates = []
            for key, _rec in self.flows.items():
                self.records_scanned += 1
                if key in self._dirty:
                    candidates.append(key)

        for key in candidates:
            rec = self.flows.get(key)
            if rec is None:
                # Evicted under flood pressure; drop its pending updates.
                del self._dirty[key]
                continue
            if self.skip_new_flows and rec.is_new:
                continue  # wait for the first real update (§III-3 literal)
            stamps = self._dirty.pop(key)
            for i, (ts_sim, wall, seq) in enumerate(stamps):
                out.append((key, ts_sim, wall, seq))
                if limit is not None and len(out) >= limit:
                    rest = stamps[i + 1 :]  # requeue what didn't fit
                    if rest:
                        self._dirty.setdefault(key, []).extend(rest)
                    return out
        return out

    # ------------------------------------------------------------------
    # checkpoint/restore
    # ------------------------------------------------------------------
    def state_snapshot(self) -> dict:
        """Database state as a plain picklable dict: the flow table,
        the dirty map (in insertion order — poll order depends on it),
        the prediction log, and the counters."""
        return {
            "flows": self.flows.state_snapshot(),
            "dirty": [(k, list(v)) for k, v in self._dirty.items()],
            "predictions": list(self.predictions),
            "predictions_base": self.predictions_base,
            "updates_registered": self.updates_registered,
            "polls": self.polls,
            "records_scanned": self.records_scanned,
        }

    def state_restore(self, state: dict) -> None:
        """Replace database contents with a :meth:`state_snapshot`
        capture (configuration flags are not restored — construct with
        the same recipe)."""
        self.flows.state_restore(state["flows"])
        self._dirty = {k: list(v) for k, v in state["dirty"]}
        self.predictions = list(state["predictions"])
        self.predictions_base = int(state.get("predictions_base", 0))
        self.updates_registered = int(state["updates_registered"])
        self.polls = int(state["polls"])
        self.records_scanned = int(state["records_scanned"])

    @property
    def pending_updates(self) -> int:
        return sum(len(v) for v in self._dirty.values())

    def latencies_ns(self) -> List[int]:
        """All stored prediction latencies, in arrival order."""
        return [p.latency_ns for p in self.predictions]
