"""Offline pre-training pipeline (§IV-C2/C3).

The testbed mechanism relies on models trained offline from a replayed
capture: extract per-packet flow features, fit the scaler, fit the model
panel on standardized features.  :class:`TrainedBundle` packages
everything the Prediction module needs at startup (models + scaler
coefficients + feature schema) and can be pickled to disk, which is the
moral equivalent of the paper's "uploads the pre-trained ML models and
the coefficients of scaler transformation".
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.features.extract import extract_features
from repro.ml.forest import RandomForestClassifier
from repro.ml.mlp import MLPClassifier
from repro.ml.naive_bayes import GaussianNB
from repro.ml.scaler import StandardScaler

__all__ = ["TrainedBundle", "default_panel", "pretrain", "pretrain_from_records"]


@dataclass
class TrainedBundle:
    """Everything the live Prediction module loads at initialization."""

    scaler: StandardScaler
    models: Dict[str, object]
    feature_names: List[str]

    def save(self, path: str | Path) -> None:
        """Pickle to disk (models are plain NumPy-backed objects)."""
        with open(path, "wb") as fh:
            pickle.dump(
                {
                    "scaler": self.scaler.coefficients(),
                    "models": self.models,
                    "feature_names": self.feature_names,
                },
                fh,
            )

    @classmethod
    def load(cls, path: str | Path) -> "TrainedBundle":
        with open(path, "rb") as fh:
            blob = pickle.load(fh)
        return cls(
            scaler=StandardScaler.from_coefficients(blob["scaler"]),
            models=blob["models"],
            feature_names=blob["feature_names"],
        )


def default_panel(seed: int = 0) -> Dict[str, Callable[[], object]]:
    """The testbed panel of §IV-C3: MLP(64,32,16), RF, GNB.

    KNN is deliberately absent — the paper drops it for its slow
    prediction times.
    """
    return {
        "mlp": lambda: MLPClassifier((64, 32, 16), max_epochs=60, seed=seed),
        "rf": lambda: RandomForestClassifier(
            n_estimators=25, max_depth=14, max_samples=20000, seed=seed
        ),
        "gnb": lambda: GaussianNB(),
    }


def pretrain(
    X: np.ndarray,
    y: np.ndarray,
    feature_names: Sequence[str],
    panel: Optional[Dict[str, Callable[[], object]]] = None,
    seed: int = 0,
) -> TrainedBundle:
    """Fit scaler + panel on an extracted feature matrix."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y).ravel()
    if X.shape[1] != len(feature_names):
        raise ValueError(
            f"X has {X.shape[1]} columns but schema lists {len(feature_names)}"
        )
    factories = panel if panel is not None else default_panel(seed)
    scaler = StandardScaler().fit(X)
    Xs = scaler.transform(X)
    models: Dict[str, object] = {}
    for name, factory in factories.items():
        models[name] = factory().fit(Xs, y)
    return TrainedBundle(scaler=scaler, models=models, feature_names=list(feature_names))


def pretrain_from_records(
    records: np.ndarray,
    labels: np.ndarray,
    source: str = "int",
    panel: Optional[Dict[str, Callable[[], object]]] = None,
    seed: int = 0,
) -> TrainedBundle:
    """Extract features from collector records, then :func:`pretrain`."""
    fm = extract_features(records, source=source)
    return pretrain(fm.X, labels, fm.names, panel=panel, seed=seed)
