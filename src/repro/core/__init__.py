"""The paper's contribution: the automated DDoS detection mechanism.

Fig 2's four modules — INT Data Collection
(:mod:`~repro.core.collection`), Data Processor
(:mod:`~repro.core.processor`), CentralServer
(:mod:`~repro.core.central`), Prediction (:mod:`~repro.core.prediction`)
— around the shared database (:mod:`~repro.core.database`), with the
ensemble/sliding-window decision logic (:mod:`~repro.core.ensemble`),
offline pre-training (:mod:`~repro.core.training`), latency bookkeeping
(:mod:`~repro.core.latency`), and the assembled detector
(:mod:`~repro.core.mechanism`).
"""

from .central import CentralServer
from .collection import IntDataCollection, SFlowDataCollection
from .database import FlowDatabase, PredictionEntry
from .ensemble import SlidingDecision, aggregate_votes
from .latency import LatencyTracker
from .mechanism import AutomatedDDoSDetector, score_by_type
from .prediction import PredictionModule
from .processor import DataProcessor
from .training import TrainedBundle, default_panel, pretrain, pretrain_from_records

__all__ = [
    "CentralServer",
    "IntDataCollection",
    "SFlowDataCollection",
    "FlowDatabase",
    "PredictionEntry",
    "SlidingDecision",
    "aggregate_votes",
    "LatencyTracker",
    "AutomatedDDoSDetector",
    "score_by_type",
    "PredictionModule",
    "DataProcessor",
    "TrainedBundle",
    "default_panel",
    "pretrain",
    "pretrain_from_records",
]
