"""INT shim + header encode/decode.

A compact INT-MD style header: a 4-byte shim (type, reserved, length) and
an 8-byte header (version, hop count, remaining hop capacity, instruction
bitmap).  The full on-wire telemetry block is
``shim + header + hop_count * HopMetadata``.

The simulator carries metadata as Python objects for speed (the byte
codec exists so the wire format is real and round-trip tested — the same
split bmv2-based INT implementations use between their control plane and
their packet templates).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Tuple

from .instructions import IntInstruction
from .metadata import HOP_METADATA_BYTES, HopMetadata

__all__ = ["IntHeader", "INT_SHIM_BYTES", "INT_HEADER_BYTES", "encode_stack", "decode_stack"]

_SHIM = struct.Struct("!BBH")  # type, reserved, total length (bytes)
_HDR = struct.Struct("!BBHI")  # version, hop_count, remaining_hops, instruction

INT_SHIM_BYTES = _SHIM.size
INT_HEADER_BYTES = _HDR.size

#: Shim "type" value identifying an INT-MD block (arbitrary but fixed).
INT_SHIM_TYPE = 0x1


@dataclass(frozen=True)
class IntHeader:
    """INT header state carried between hops.

    Attributes
    ----------
    version : int
        Header version (we emit 2, as in INT spec 2.x).
    hop_count : int
        Number of hop metadata records currently stacked.
    remaining_hops : int
        How many more hops may append before the stack is full.
    instruction : IntInstruction
        Bitmap of requested metadata fields.
    """

    version: int
    hop_count: int
    remaining_hops: int
    instruction: IntInstruction

    def encode(self) -> bytes:
        return _HDR.pack(
            self.version & 0xFF,
            self.hop_count & 0xFF,
            self.remaining_hops & 0xFFFF,
            int(self.instruction) & 0xFFFFFFFF,
        )

    @classmethod
    def decode(cls, data: bytes) -> "IntHeader":
        if len(data) != INT_HEADER_BYTES:
            raise ValueError(f"INT header must be {INT_HEADER_BYTES} bytes")
        version, hop_count, remaining, instruction = _HDR.unpack(data)
        return cls(version, hop_count, remaining, IntInstruction(instruction))


def encode_stack(header: IntHeader, stack: List[HopMetadata]) -> bytes:
    """Serialize shim + header + hop records to the on-wire byte block."""
    if header.hop_count != len(stack):
        raise ValueError(
            f"header hop_count {header.hop_count} != stack length {len(stack)}"
        )
    body = header.encode() + b"".join(h.encode() for h in stack)
    total = _SHIM.size + len(body)
    return _SHIM.pack(INT_SHIM_TYPE, 0, total) + body


def decode_stack(data: bytes) -> Tuple[IntHeader, List[HopMetadata]]:
    """Parse a telemetry block produced by :func:`encode_stack`.

    Raises
    ------
    ValueError
        On a bad shim type, truncated block, or length mismatch.
    """
    if len(data) < _SHIM.size + INT_HEADER_BYTES:
        raise ValueError("telemetry block truncated")
    shim_type, _res, total = _SHIM.unpack(data[: _SHIM.size])
    if shim_type != INT_SHIM_TYPE:
        raise ValueError(f"unexpected shim type {shim_type:#x}")
    if total != len(data):
        raise ValueError(f"shim length {total} != block length {len(data)}")
    off = _SHIM.size
    header = IntHeader.decode(data[off : off + INT_HEADER_BYTES])
    off += INT_HEADER_BYTES
    expected = header.hop_count * HOP_METADATA_BYTES
    if len(data) - off != expected:
        raise ValueError(
            f"hop stack size {len(data) - off} != hop_count*{HOP_METADATA_BYTES}"
        )
    stack = [
        HopMetadata.decode(data[off + i * HOP_METADATA_BYTES : off + (i + 1) * HOP_METADATA_BYTES])
        for i in range(header.hop_count)
    ]
    return header, stack
