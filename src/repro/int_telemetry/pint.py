"""Probabilistic / sampled INT (the paper's future-work direction).

Section V cites PINT [30] and spatial sampling [31] as the route to
taming INT's volume before a production rollout.  This module implements
both reduction axes over the existing role machinery:

* :class:`PintSource` — *temporal* sampling: initiate INT only on a
  Bernoulli fraction of packets.  Telemetry volume scales with the
  fraction; unsampled packets carry zero overhead.  Unlike sFlow the
  samples still carry in-band queue/timing metadata.
* :class:`PintTransit` — *per-hop* probabilistic metadata: every INT
  packet keeps its header, but each hop appends its record only with
  probability ``hop_probability`` (each record still names its switch,
  so the collector can aggregate per-hop statistics across packets —
  PINT's core idea of amortizing telemetry over the flow).

:func:`overhead_report` quantifies the wire overhead a capture paid, so
the accuracy-vs-overhead tradeoff is measurable (see
``benchmarks/bench_ablation_pint.py``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.rng import as_generator
from repro.dataplane.packet import Packet
from repro.dataplane.switch import Switch

from .instructions import AMLIGHT_INSTRUCTION, IntInstruction
from .metadata import HOP_METADATA_BYTES, HopMetadata
from .roles import DEFAULT_MAX_HOPS

__all__ = ["PintSource", "PintTransit", "overhead_report"]

#: Shim + header bytes paid by any packet carrying INT at all.
INT_BASE_OVERHEAD = 12


class PintSource:
    """Temporal INT sampling: monitor a Bernoulli fraction of packets.

    Parameters
    ----------
    packet_fraction : float
        Probability that a packet is selected for telemetry (1.0 is
        classic full INT).
    instruction : IntInstruction
        Metadata bitmap for selected packets.
    seed : int | numpy.random.Generator | None
    """

    def __init__(
        self,
        packet_fraction: float = 1.0,
        instruction: IntInstruction = AMLIGHT_INSTRUCTION,
        seed=None,
    ) -> None:
        if not 0.0 < packet_fraction <= 1.0:
            raise ValueError(f"packet_fraction must be in (0, 1]: {packet_fraction}")
        self.packet_fraction = float(packet_fraction)
        self.instruction = instruction
        self._rng = as_generator(seed)
        self.observed = 0
        self.initiated = 0

    def attach(self, switch: Switch) -> None:
        switch.add_ingress_hook(self.on_ingress)

    def on_ingress(self, switch: Switch, pkt: Packet, in_port: int) -> bool:
        self.observed += 1
        if pkt.int_stack is None and (
            self.packet_fraction >= 1.0
            or self._rng.random() < self.packet_fraction
        ):
            pkt.int_stack = []
            pkt.int_instruction = int(self.instruction)
            self.initiated += 1
        return True


class PintTransit:
    """Per-hop probabilistic metadata insertion (PINT-style).

    Each hop of an INT packet appends its record with probability
    ``hop_probability``; expected per-packet overhead drops from
    ``hops × 16`` bytes to ``hops × p × 16``.
    """

    def __init__(
        self,
        hop_probability: float = 1.0,
        max_hops: int = DEFAULT_MAX_HOPS,
        seed=None,
    ) -> None:
        if not 0.0 < hop_probability <= 1.0:
            raise ValueError(f"hop_probability must be in (0, 1]: {hop_probability}")
        self.hop_probability = float(hop_probability)
        self.max_hops = int(max_hops)
        self._rng = as_generator(seed)
        self.offered = 0
        self.appended = 0

    def attach(self, switch: Switch) -> None:
        switch.add_egress_hook(self.on_egress)

    def on_egress(
        self, switch: Switch, pkt: Packet, out_port: int, egress_ns: int, depth: int
    ) -> None:
        if pkt.int_stack is None:
            return
        self.offered += 1
        if len(pkt.int_stack) >= self.max_hops:
            return
        if self.hop_probability < 1.0 and self._rng.random() >= self.hop_probability:
            return
        pkt.int_stack.append(
            HopMetadata.capture(switch.switch_id, pkt.ts_ingress, egress_ns, depth)
        )
        self.appended += 1


def overhead_report(records: np.ndarray, total_packets: int) -> dict:
    """Wire-overhead accounting for a telemetry capture.

    Parameters
    ----------
    records : REPORT_DTYPE array
        What the collector received.
    total_packets : int
        Packets that crossed the monitored path (sampled or not).

    Returns
    -------
    dict with ``monitored_fraction``, ``metadata_bytes``,
    ``mean_bytes_per_packet`` (averaged over *all* packets — the number
    that matters for link budgeting), and ``mean_hops_recorded``.
    """
    if total_packets < 1:
        raise ValueError("total_packets must be >= 1")
    n = int(records.shape[0])
    hops = records["hops"].astype(np.int64) if n else np.zeros(0, dtype=np.int64)
    metadata_bytes = int(hops.sum()) * HOP_METADATA_BYTES + n * INT_BASE_OVERHEAD
    return {
        "monitored_fraction": n / total_packets,
        "metadata_bytes": metadata_bytes,
        "mean_bytes_per_packet": metadata_bytes / total_packets,
        "mean_hops_recorded": float(hops.mean()) if n else 0.0,
    }
