"""Telemetry report records exported by the INT sink.

When the sink switch strips the INT stack it emits one
:class:`TelemetryReport` per packet toward the collector.  The report
combines the packet's flow identifiers (the five-tuple plus flags and
length, read from the IP/L4 headers — paper §III-1) with the per-hop
metadata accumulated in flight.

:data:`REPORT_DTYPE` defines the flat structured layout the collector
stores: one row per packet with the fields the Data Processor consumes.
Per-hop detail is summarized into scalars the way the paper's pipeline
uses them — ingress/egress timestamps (the monitored edge of the path),
maximum queue occupancy along the path, and total wrap-aware hop latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .metadata import HopMetadata
from .timestamps import delta32

__all__ = ["TelemetryReport", "REPORT_DTYPE", "report_to_row"]

#: Flat per-packet record layout used by :class:`~repro.int_telemetry.collector.IntCollector`.
REPORT_DTYPE = np.dtype(
    [
        ("ts_report", np.int64),  # absolute collector-arrival time (ns)
        ("src_ip", np.uint32),
        ("dst_ip", np.uint32),
        ("src_port", np.uint16),
        ("dst_port", np.uint16),
        ("protocol", np.uint8),
        ("tcp_flags", np.uint8),
        ("length", np.uint32),
        ("ingress_ts", np.uint32),  # wrapped 32-bit, first hop
        ("egress_ts", np.uint32),  # wrapped 32-bit, last hop
        ("queue_occupancy", np.uint16),  # max along the path
        ("hop_latency", np.int64),  # total wrap-aware in-switch time (ns)
        ("hops", np.uint8),
    ]
)


@dataclass(frozen=True)
class TelemetryReport:
    """One packet's telemetry as assembled by the INT sink."""

    ts_report: int
    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: int
    tcp_flags: int
    length: int
    hop_stack: tuple

    @property
    def ingress_ts(self) -> int:
        """Wrapped ingress timestamp at the first INT hop."""
        return self.hop_stack[0].ingress_ts

    @property
    def egress_ts(self) -> int:
        """Wrapped egress timestamp at the last INT hop."""
        return self.hop_stack[-1].egress_ts

    @property
    def queue_occupancy(self) -> int:
        """Maximum queue depth observed along the path."""
        return max(h.queue_occupancy for h in self.hop_stack)

    @property
    def hop_latency_ns(self) -> int:
        """Total wrap-aware time spent inside switches."""
        return sum(int(delta32(h.egress_ts, h.ingress_ts)) for h in self.hop_stack)

    @property
    def hops(self) -> int:
        return len(self.hop_stack)


def report_to_row(report: TelemetryReport) -> tuple:
    """Flatten a report into a tuple matching :data:`REPORT_DTYPE` order."""
    return (
        report.ts_report,
        report.src_ip,
        report.dst_ip,
        report.src_port,
        report.dst_port,
        report.protocol,
        report.tcp_flags,
        report.length,
        report.ingress_ts,
        report.egress_ts,
        min(report.queue_occupancy, 0xFFFF),
        report.hop_latency_ns,
        report.hops,
    )
