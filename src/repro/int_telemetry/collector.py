"""INT collector.

The collector is the off-switch endpoint of Fig 1: it receives one
telemetry report per packet from the sink switch and accumulates them in
a structured-array buffer.  The INT Data Collection module of the
automated mechanism (paper §III-1) reads from here, either in bulk
(offline training) or as a live stream of callbacks (online detection).
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.common.buffers import GrowableRecordBuffer

from .report import REPORT_DTYPE, TelemetryReport, report_to_row

__all__ = ["IntCollector"]


class IntCollector:
    """Accumulates telemetry reports; optionally streams them onward.

    Parameters
    ----------
    keep_stacks : bool
        Retain the full per-hop metadata objects alongside the flat rows
        (needed by a few tests and the Fig 1 walkthrough; costs memory,
        off by default).
    subscriber : callable(TelemetryReport), optional
        Live tap invoked synchronously on every ingested report — this is
        how the online detection pipeline consumes INT without waiting
        for the run to finish.
    """

    def __init__(
        self,
        keep_stacks: bool = False,
        subscriber: Optional[Callable[[TelemetryReport], None]] = None,
    ) -> None:
        self._buffer = GrowableRecordBuffer(REPORT_DTYPE, initial_capacity=4096)
        self.keep_stacks = keep_stacks
        self.stacks: List[tuple] = []
        self.subscriber = subscriber
        self.reports_ingested = 0

    def __len__(self) -> int:
        return len(self._buffer)

    def ingest(self, report: TelemetryReport) -> None:
        """Receive one report from a sink switch."""
        self._buffer.append_row(report_to_row(report))
        if self.keep_stacks:
            self.stacks.append(report.hop_stack)
        self.reports_ingested += 1
        if self.subscriber is not None:
            self.subscriber(report)

    def to_records(self) -> np.ndarray:
        """Owning structured array of everything collected so far."""
        return self._buffer.compact()

    def view(self) -> np.ndarray:
        """Zero-copy view (invalidated by the next buffer growth)."""
        return self._buffer.view()

    def clear(self) -> None:
        """Drop everything collected (storage retained)."""
        self._buffer.clear()
        self.stacks.clear()
        self.reports_ingested = 0
