"""INT switch roles: source, transit, sink.

Roles attach to :class:`~repro.dataplane.switch.Switch` instances as
pipeline hooks (the same way a P4 program layers INT over forwarding):

* :class:`IntSource` — ingress hook.  Decides (via an optional watchlist
  predicate) whether a packet is monitored; if so, initializes an empty
  INT stack and writes the instruction bitmap.  Its own hop metadata is
  added at egress like every other hop.
* :class:`IntTransit` — egress hook.  Appends this switch's hop metadata
  to packets already carrying INT.
* :class:`IntSink` — egress hook that runs *after* the transit hook on
  the sink switch: it strips the accumulated stack, builds a
  :class:`~repro.int_telemetry.report.TelemetryReport`, forwards it to
  the collector, and restores the packet to its original size so the
  destination host never sees telemetry bytes (Fig 1).

A single switch may carry all three roles (the Fig 6 testbed collapses
source and sink onto one physical Wedge switch).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.dataplane.packet import Packet
from repro.dataplane.switch import Switch

from .collector import IntCollector
from .instructions import AMLIGHT_INSTRUCTION, IntInstruction
from .metadata import HopMetadata
from .report import TelemetryReport

__all__ = ["IntSource", "IntTransit", "IntSink", "attach_int_path"]

#: Maximum hop records a packet may carry (INT remaining-hop budget).
DEFAULT_MAX_HOPS = 8


class IntSource:
    """Ingress-side INT initiation.

    Parameters
    ----------
    instruction : IntInstruction
        Metadata bitmap to request from downstream hops.
    watchlist : callable(Packet) -> bool, optional
        Predicate selecting monitored packets; default monitors all
        traffic (as AmLight's deployment does for the studied subnet).
    max_hops : int
        Remaining-hop budget written into the INT header.
    """

    def __init__(
        self,
        instruction: IntInstruction = AMLIGHT_INSTRUCTION,
        watchlist: Optional[Callable[[Packet], bool]] = None,
        max_hops: int = DEFAULT_MAX_HOPS,
    ) -> None:
        self.instruction = instruction
        self.watchlist = watchlist
        self.max_hops = int(max_hops)
        self.initiated = 0

    def attach(self, switch: Switch) -> None:
        switch.add_ingress_hook(self.on_ingress)

    def on_ingress(self, switch: Switch, pkt: Packet, in_port: int) -> bool:
        if pkt.int_stack is None and (self.watchlist is None or self.watchlist(pkt)):
            pkt.int_stack = []
            pkt.int_instruction = int(self.instruction)
            self.initiated += 1
        return True


class IntTransit:
    """Egress-side hop metadata insertion (every INT hop does this)."""

    def __init__(self, max_hops: int = DEFAULT_MAX_HOPS) -> None:
        self.max_hops = int(max_hops)
        self.appended = 0
        self.budget_exhausted = 0

    def attach(self, switch: Switch) -> None:
        switch.add_egress_hook(self.on_egress)

    def on_egress(
        self, switch: Switch, pkt: Packet, out_port: int, egress_ns: int, depth: int
    ) -> None:
        if pkt.int_stack is None:
            return
        if len(pkt.int_stack) >= self.max_hops:
            self.budget_exhausted += 1
            return
        pkt.int_stack.append(
            HopMetadata.capture(switch.switch_id, pkt.ts_ingress, egress_ns, depth)
        )
        self.appended += 1


class IntSink:
    """Strip the INT stack at the network edge and report to the collector.

    Must be attached *after* the sink switch's own :class:`IntTransit`
    hook so the sink's hop metadata is included in the report (the paper's
    sink both records and extracts).

    Parameters
    ----------
    collector : IntCollector
        Destination for telemetry reports.
    export_delay_ns : int
        Modeled delay between dequeue at the sink and report arrival at
        the collector (mirrors the port-5 tap in Fig 6).
    sink_ports : set of int, optional
        Restrict extraction to packets leaving through these ports (e.g.
        only host-facing ports); default extracts on every egress.
    """

    def __init__(
        self,
        collector: IntCollector,
        export_delay_ns: int = 0,
        sink_ports: Optional[set] = None,
    ) -> None:
        self.collector = collector
        self.export_delay_ns = int(export_delay_ns)
        self.sink_ports = sink_ports
        self.extracted = 0

    def attach(self, switch: Switch) -> None:
        switch.add_egress_hook(self.on_egress)

    def on_egress(
        self, switch: Switch, pkt: Packet, out_port: int, egress_ns: int, depth: int
    ) -> None:
        if pkt.int_stack is None or not pkt.int_stack:
            return
        if self.sink_ports is not None and out_port not in self.sink_ports:
            return
        report = TelemetryReport(
            ts_report=egress_ns + self.export_delay_ns,
            src_ip=pkt.src_ip,
            dst_ip=pkt.dst_ip,
            src_port=pkt.src_port,
            dst_port=pkt.dst_port,
            protocol=pkt.protocol,
            tcp_flags=pkt.tcp_flags,
            length=pkt.length,
            hop_stack=tuple(pkt.int_stack),
        )
        # Strip telemetry so the destination host receives a clean packet.
        pkt.int_stack = None
        pkt.int_instruction = 0
        self.extracted += 1
        self.collector.ingest(report)


def attach_int_path(
    source_sw: Switch,
    transit_sws: list[Switch],
    sink_sw: Switch,
    collector: IntCollector,
    instruction: IntInstruction = AMLIGHT_INSTRUCTION,
    watchlist: Optional[Callable[[Packet], bool]] = None,
    sink_ports: Optional[set] = None,
) -> dict:
    """Wire the Fig 1 role assignment onto an existing switch path.

    Every switch (source, transit, sink) gets a transit hook so it
    contributes hop metadata; the first switch additionally initiates INT
    and the last one extracts and reports.

    Returns
    -------
    dict
        The role objects, keyed ``{"source", "transits", "sink"}`` for
        later inspection of counters.
    """
    src_role = IntSource(instruction=instruction, watchlist=watchlist)
    src_role.attach(source_sw)
    roles = {"source": src_role, "transits": [], "sink": None}

    seen: set[int] = set()
    for sw in [source_sw, *transit_sws, sink_sw]:
        if id(sw) in seen:  # single-switch testbeds collapse roles
            continue
        seen.add(id(sw))
        tr = IntTransit()
        tr.attach(sw)
        roles["transits"].append(tr)

    sink_role = IntSink(collector, sink_ports=sink_ports)
    sink_role.attach(sink_sw)
    roles["sink"] = sink_role
    return roles
