"""Per-hop INT metadata records.

One :class:`HopMetadata` is appended to the packet's INT stack by every
INT-capable switch the packet traverses (source, transit, and sink all
contribute their own hop record).  Timestamps are stored *wrapped* to 32
bits, as on the wire — consumers must use
:func:`repro.int_telemetry.timestamps.delta32` to difference them.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .timestamps import delta32, wrap32

__all__ = ["HopMetadata", "HOP_METADATA_BYTES"]

# switch_id:u32 | ingress_ts:u32 | egress_ts:u32 | queue_occupancy:u16 | pad:u16
_STRUCT = struct.Struct("!IIIHH")

#: Serialized size of one hop record (bytes) — drives INT wire overhead.
HOP_METADATA_BYTES = _STRUCT.size


@dataclass(frozen=True)
class HopMetadata:
    """Telemetry appended by one switch hop.

    Attributes
    ----------
    switch_id : int
        Identifier of the reporting switch.
    ingress_ts : int
        Wrapped 32-bit nanosecond timestamp when the packet entered the
        switch.
    egress_ts : int
        Wrapped 32-bit nanosecond timestamp when the packet left the
        egress queue.
    queue_occupancy : int
        Queue depth (packets) observed when this packet was dequeued —
        the paper's "queue depth when the packet is removed from the
        queue".
    """

    switch_id: int
    ingress_ts: int
    egress_ts: int
    queue_occupancy: int

    @classmethod
    def capture(
        cls, switch_id: int, ingress_ns: int, egress_ns: int, queue_depth: int
    ) -> "HopMetadata":
        """Build a record from absolute simulator times (wraps to 32 bits)."""
        return cls(
            switch_id=int(switch_id),
            ingress_ts=int(wrap32(ingress_ns)),
            egress_ts=int(wrap32(egress_ns)),
            queue_occupancy=int(queue_depth),
        )

    @property
    def hop_latency_ns(self) -> int:
        """Wrap-aware time spent inside the switch (queueing + pipeline)."""
        return int(delta32(self.egress_ts, self.ingress_ts))

    def encode(self) -> bytes:
        """Serialize to the on-wire 16-byte layout."""
        occ = min(self.queue_occupancy, 0xFFFF)
        return _STRUCT.pack(
            self.switch_id & 0xFFFFFFFF,
            self.ingress_ts & 0xFFFFFFFF,
            self.egress_ts & 0xFFFFFFFF,
            occ,
            0,
        )

    @classmethod
    def decode(cls, data: bytes) -> "HopMetadata":
        """Parse one hop record from its 16-byte wire form."""
        if len(data) != HOP_METADATA_BYTES:
            raise ValueError(
                f"hop metadata must be {HOP_METADATA_BYTES} bytes, got {len(data)}"
            )
        switch_id, ingress_ts, egress_ts, occ, _pad = _STRUCT.unpack(data)
        return cls(switch_id, ingress_ts, egress_ts, occ)
