"""In-band Network Telemetry (INT) stack.

Implements the INT-MD style telemetry path of Fig 1: instruction bitmaps,
per-hop metadata with wrapped 32-bit nanosecond timestamps, shim/header
byte codecs, the source/transit/sink switch roles, telemetry reports and
the collector.
"""

from .collector import IntCollector
from .header import IntHeader, decode_stack, encode_stack
from .instructions import AMLIGHT_INSTRUCTION, IntInstruction, instruction_fields
from .metadata import HOP_METADATA_BYTES, HopMetadata
from .pint import PintSource, PintTransit, overhead_report
from .report import REPORT_DTYPE, TelemetryReport
from .roles import IntSink, IntSource, IntTransit, attach_int_path
from .timestamps import (
    WRAP_PERIOD_NS,
    WRAP_PERIOD_S,
    delta32,
    naive_delta32,
    unwrap32,
    wrap32,
)

__all__ = [
    "IntCollector",
    "IntHeader",
    "encode_stack",
    "decode_stack",
    "IntInstruction",
    "AMLIGHT_INSTRUCTION",
    "instruction_fields",
    "HopMetadata",
    "HOP_METADATA_BYTES",
    "PintSource",
    "PintTransit",
    "overhead_report",
    "TelemetryReport",
    "REPORT_DTYPE",
    "IntSource",
    "IntTransit",
    "IntSink",
    "attach_int_path",
    "WRAP_PERIOD_NS",
    "WRAP_PERIOD_S",
    "wrap32",
    "delta32",
    "naive_delta32",
    "unwrap32",
]
