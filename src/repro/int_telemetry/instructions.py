"""INT instruction bitmap.

The INT source switch writes an *instruction bitmap* into the INT header
telling downstream hops which metadata fields to append (INT-MD
specification §4.5).  We implement the subset the AmLight deployment
collects (paper §III-1): switch id, ingress timestamp, egress timestamp,
queue occupancy, and hop latency.
"""

from __future__ import annotations

from enum import IntFlag

__all__ = ["IntInstruction", "AMLIGHT_INSTRUCTION", "instruction_fields"]


class IntInstruction(IntFlag):
    """Bit positions of the INT-MD instruction bitmap (subset)."""

    NONE = 0
    SWITCH_ID = 1 << 0
    INGRESS_TSTAMP = 1 << 1
    EGRESS_TSTAMP = 1 << 2
    QUEUE_OCCUPANCY = 1 << 3
    HOP_LATENCY = 1 << 4

    ALL = SWITCH_ID | INGRESS_TSTAMP | EGRESS_TSTAMP | QUEUE_OCCUPANCY | HOP_LATENCY


#: The instruction set AmLight's deployment requests: everything in
#: Table II's INT column (hop latency is collected but later dropped from
#: the feature set because its scale differed across flow types).
AMLIGHT_INSTRUCTION = IntInstruction.ALL

_FIELD_ORDER = (
    (IntInstruction.SWITCH_ID, "switch_id"),
    (IntInstruction.INGRESS_TSTAMP, "ingress_ts"),
    (IntInstruction.EGRESS_TSTAMP, "egress_ts"),
    (IntInstruction.QUEUE_OCCUPANCY, "queue_occupancy"),
    (IntInstruction.HOP_LATENCY, "hop_latency"),
)


def instruction_fields(bitmap: IntInstruction | int) -> tuple[str, ...]:
    """Ordered metadata field names selected by an instruction bitmap.

    Field order is fixed by the bitmap's bit order, mirroring how a real
    INT transit hop serializes metadata words.
    """
    bitmap = IntInstruction(bitmap)
    return tuple(name for bit, name in _FIELD_ORDER if bitmap & bit)
