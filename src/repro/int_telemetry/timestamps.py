"""32-bit nanosecond timestamp handling for INT metadata.

INT-MD hop metadata carries ingress/egress timestamps as 32-bit unsigned
nanosecond counters.  A 32-bit counter wraps every ``2**32 ns ≈ 4.295 s``,
which the AmLight paper (Section V) identifies as a practical limitation:
inter-arrival times computed as naive differences of consecutive
timestamps are wrong whenever a wrap falls between two packets.

This module provides the canonical conversions used across the telemetry
stack:

* :func:`wrap32` — fold an absolute nanosecond time onto the 32-bit counter.
* :func:`delta32` — wrap-aware difference between two 32-bit stamps, valid
  whenever the true gap is below one wrap period.
* :func:`unwrap32` — reconstruct a monotone absolute timeline from a
  sequence of wrapped stamps (the fix the paper's production deployment
  would need).

All functions accept scalars or NumPy arrays and are fully vectorized.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "WRAP_PERIOD_NS",
    "WRAP_PERIOD_S",
    "wrap32",
    "delta32",
    "delta32_signed",
    "unwrap32",
    "naive_delta32",
]

#: Number of distinct values of the 32-bit counter (wrap modulus), in ns.
WRAP_PERIOD_NS: int = 2**32

#: Wrap period expressed in seconds (~4.295 s), as quoted in the paper.
WRAP_PERIOD_S: float = WRAP_PERIOD_NS / 1e9


def wrap32(t_ns):
    """Fold absolute nanosecond timestamps onto the 32-bit INT counter.

    Parameters
    ----------
    t_ns : int or array_like of int
        Absolute timestamps in nanoseconds (may exceed 32 bits).

    Returns
    -------
    numpy.uint32 or numpy.ndarray of uint32
        ``t_ns mod 2**32`` — what an INT-enabled switch would actually
        write into the hop metadata.
    """
    arr = np.asarray(t_ns, dtype=np.int64)
    wrapped = np.mod(arr, WRAP_PERIOD_NS).astype(np.uint32)
    if np.isscalar(t_ns) or arr.ndim == 0:
        return np.uint32(wrapped)
    return wrapped


def naive_delta32(later, earlier):
    """Difference of two wrapped stamps *without* wrap correction.

    This reproduces the error mode described in the paper: a signed
    subtraction of two ``uint32`` stamps interpreted as plain integers.
    When a wrap occurs between ``earlier`` and ``later`` the result is
    negative (off by exactly one wrap period).  Exposed so the timestamp
    ablation benchmark can inject the faulty behaviour.

    Returns
    -------
    numpy.int64 or numpy.ndarray of int64
    """
    a = np.asarray(later, dtype=np.int64)
    b = np.asarray(earlier, dtype=np.int64)
    out = a - b
    if np.isscalar(later) and np.isscalar(earlier):
        return np.int64(out)
    return out


def delta32(later, earlier):
    """Wrap-aware difference between two 32-bit nanosecond stamps.

    Assumes the true elapsed time is non-negative and strictly less than
    one wrap period (``~4.295 s``).  Under that assumption the modular
    difference ``(later - earlier) mod 2**32`` recovers the exact gap.

    Parameters
    ----------
    later, earlier : int or array_like of int
        Wrapped 32-bit timestamps (values outside ``[0, 2**32)`` are
        folded first).

    Returns
    -------
    numpy.int64 or numpy.ndarray of int64
        Elapsed nanoseconds in ``[0, 2**32)``.
    """
    a = np.asarray(later, dtype=np.int64)
    b = np.asarray(earlier, dtype=np.int64)
    out = np.mod(a - b, WRAP_PERIOD_NS)
    if np.isscalar(later) and np.isscalar(earlier):
        return np.int64(out)
    return out


def delta32_signed(later, earlier):
    """Wrap-aware *signed* difference between two 32-bit stamps.

    Interprets the modular difference in ``[-2**31, 2**31)`` — the
    nearest representative — so slight reordering between two stamps
    yields a small negative number instead of a near-full-wrap positive
    one.  This is the correct differencing when the two stamps may come
    from different observation points (e.g. the two edge switches of a
    bidirectional flow), where queueing and export skew can reorder
    records by microseconds.

    Returns
    -------
    numpy.int64 or numpy.ndarray of int64
        Signed gap in ``[-2**31, 2**31)`` nanoseconds.
    """
    a = np.asarray(later, dtype=np.int64)
    b = np.asarray(earlier, dtype=np.int64)
    half = WRAP_PERIOD_NS // 2
    out = np.mod(a - b + half, WRAP_PERIOD_NS) - half
    if np.isscalar(later) and np.isscalar(earlier):
        return np.int64(out)
    return out


def unwrap32(stamps):
    """Reconstruct a monotone absolute timeline from wrapped stamps.

    Given a sequence of 32-bit stamps taken from a monotonically
    non-decreasing clock where consecutive samples are less than one wrap
    period apart, return absolute nanosecond times starting at
    ``stamps[0]``.

    Parameters
    ----------
    stamps : array_like of int
        Wrapped timestamps in observation order.

    Returns
    -------
    numpy.ndarray of int64
        Monotone non-decreasing absolute timestamps.

    Raises
    ------
    ValueError
        If ``stamps`` is empty.
    """
    arr = np.asarray(stamps, dtype=np.int64)
    if arr.size == 0:
        raise ValueError("unwrap32 requires at least one timestamp")
    arr = np.mod(arr, WRAP_PERIOD_NS)
    gaps = np.mod(np.diff(arr), WRAP_PERIOD_NS)
    out = np.empty_like(arr)
    out[0] = arr[0]
    if gaps.size:
        np.cumsum(gaps, out=out[1:])
        out[1:] += arr[0]
    return out
