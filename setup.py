"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package,
so PEP 517 editable installs (which must build an editable wheel) fail
with ``invalid command 'bdist_wheel'``.  ``python setup.py develop`` and
``pip install -e . --no-build-isolation`` both work through this shim.
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
