#!/usr/bin/env python
"""The 32-bit INT timestamp wrap (paper §V), demonstrated end to end.

INT hop metadata carries nanosecond timestamps in 32 bits, so the
counter wraps every ~4.295 seconds.  A pipeline that differences
consecutive stamps naively computes wildly wrong inter-arrival times for
any flow whose packets straddle a wrap — the exact limitation the paper
calls out for production deployments.  This script builds a slow flow
whose gaps cross several wraps and shows the feature corruption, then
the wrap-aware fix.

Run:  python examples/timestamp_wraparound.py
"""

import numpy as np

from repro.features import extract_features
from repro.int_telemetry import (
    REPORT_DTYPE,
    WRAP_PERIOD_S,
    delta32,
    naive_delta32,
    wrap32,
)

print(f"32-bit ns counter wraps every {WRAP_PERIOD_S:.3f} s\n")

# --- a slow flow: one packet every 1.5 s, 10 packets --------------------
gap_ns = 1_500_000_000
true_times = np.arange(10, dtype=np.int64) * gap_ns
stamps = wrap32(true_times)

print("packet  true_time(s)  32-bit stamp   naive gap(s)   wrap-aware gap(s)")
for i in range(1, len(stamps)):
    naive = int(naive_delta32(int(stamps[i]), int(stamps[i - 1]))) / 1e9
    aware = int(delta32(int(stamps[i]), int(stamps[i - 1]))) / 1e9
    marker = "  <-- wrap!" if naive < 0 else ""
    print(
        f"{i:>6d}  {true_times[i] / 1e9:>11.1f}  {int(stamps[i]):>12d} "
        f"{naive:>13.3f} {aware:>18.3f}{marker}"
    )

# --- effect on extracted features ---------------------------------------
records = np.zeros(len(stamps), dtype=REPORT_DTYPE)
records["ts_report"] = true_times
records["src_ip"], records["dst_ip"] = 1, 2
records["src_port"], records["dst_port"], records["protocol"] = 1000, 80, 6
records["length"] = 100
records["ingress_ts"] = stamps
records["egress_ts"] = stamps

aware = extract_features(records, source="int", wrap_mode="aware")
naive = extract_features(records, source="int", wrap_mode="naive")
col = aware.names.index("inter_arrival_cum")
print(
    f"\nflow duration feature:  wrap-aware = {aware.X[-1, col]:.2f} s "
    f"(truth {true_times[-1] / 1e9:.2f} s),  naive = {naive.X[-1, col]:.2f} s"
)
print(
    "\nWith naive differencing every wrapped gap clamps to zero, so the "
    "flow looks\nfar shorter and burstier than it is — exactly the error "
    "the paper warns would\nbreak longer-time-frame analyses.  The "
    "wrap-aware signed modular difference\nrestores the true gaps; its "
    "validity window is half a wrap period (~2.15 s per\ngap), the price "
    "of also tolerating slight record reordering between the two\n"
    "observation points of a bidirectional flow."
)
