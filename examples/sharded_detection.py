#!/usr/bin/env python
"""Shard-parallel live detection: same answer, more cores.

Builds a small pre-trained panel, replays one synthetic telemetry
stream through the live mechanism twice — single-process batched, then
sharded across two worker processes — and shows that the merged
prediction log is result-identical (same SHA-256 digest over every
deterministic entry field), clean *and* under fault injection.

The partition is by canonical five-tuple hash, so each worker owns its
flows outright; cycle cadence and chaos replay are driven by the
coordinator, which is what makes the result independent of the worker
count (DESIGN.md §10).

Run:  python examples/sharded_detection.py
"""

import time

import numpy as np

from repro.core import AutomatedDDoSDetector, pretrain
from repro.core.sharding import prediction_log_digest
from repro.features import extract_features
from repro.int_telemetry import REPORT_DTYPE
from repro.ml import GaussianNB, RandomForestClassifier
from repro.resilience.chaos import ChaosSchedule


def synthetic_records(n_flows=60, pkts_per_flow=24, attack=False, t0=0):
    """Benign (slow, large packets) or flood-like (fast, 64 B) flows."""
    rows = []
    t = t0
    for f in range(n_flows):
        sport = 1000 + f
        for _ in range(pkts_per_flow):
            t += 50_000 if attack else 2_000_000
            length = 64 if attack else 1200
            src = 0x01000000 + f if attack else 0xAC100000 + f
            rows.append((t, src, 0x0A0A0050, sport, 80, 6, 2, length,
                         t % 2**32, t % 2**32, 0, 500, 3))
    rec = np.zeros(len(rows), dtype=REPORT_DTYPE)
    for i, row in enumerate(rows):
        rec[i] = row
    return rec


# --- 1. pre-train a small RF + GNB panel -------------------------------
ben = synthetic_records(attack=False)
atk = synthetic_records(attack=True, t0=10**9)
train = np.concatenate([ben, atk])
fm = extract_features(train, source="int")
y = np.array([0] * len(ben) + [1] * len(atk))
bundle = pretrain(
    fm.X, y, fm.names,
    panel={
        "rf": lambda: RandomForestClassifier(n_estimators=5, max_depth=6, seed=0),
        "gnb": lambda: GaussianNB(),
    },
)

# --- 2. one live stream, interleaving benign and attack flows ----------
stream = train[np.random.default_rng(7).permutation(len(train))]
print(f"live stream: {len(stream)} telemetry reports")

CHAOS = ChaosSchedule(
    drop_rate=0.05, duplicate_rate=0.03, reorder_rate=0.04, reorder_depth=3,
)


def run(shards=None, chaos=None):
    det = AutomatedDDoSDetector(
        bundle, batched=True, chaos=chaos, chaos_seed=123
    )
    t0 = time.perf_counter()
    det.run_stream(stream, poll_every=64, cycle_budget=256, shards=shards)
    dt = time.perf_counter() - t0
    return det, dt


# --- 3. single-process vs 2-shard, clean and under chaos ---------------
for label, chaos in (("clean", None), ("chaos", CHAOS)):
    single, t_single = run(chaos=chaos)
    sharded, t_sharded = run(shards=2, chaos=chaos)
    d_single = prediction_log_digest(single.db)
    d_sharded = prediction_log_digest(sharded.db)
    match = "identical" if d_single == d_sharded else "MISMATCH"
    print(
        f"\n[{label}] single-process: {len(single.db.predictions)} predictions"
        f" in {t_single * 1e3:.0f} ms"
    )
    print(
        f"[{label}] 2 shards:       {len(sharded.db.predictions)} predictions"
        f" in {t_sharded * 1e3:.0f} ms"
    )
    print(f"[{label}] merged log digest: {d_single[:16]}… -> {match}")
    assert d_single == d_sharded
    for i, worker in enumerate(sharded.stats()["shards"]):
        print(f"[{label}]   worker {i}: {worker['predictions_served']} served")

print(
    "\nOn this box the timing difference is IPC overhead vs parallelism;"
    "\nthe *result* is the point — byte-identical for any worker count."
)
