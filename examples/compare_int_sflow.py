#!/usr/bin/env python
"""INT vs sFlow head-to-head (the paper's §IV-B study, condensed).

Builds the full synthetic AmLight campaign — six compressed days of web
traffic with the eleven Table I attack episodes — captures it with both
INT (every packet) and sFlow (1:512 sampling), trains the same model on
each capture, and prints the comparison, including the headline sampling
pathology: sFlow records nothing at all during the SlowLoris episodes.

Run:  python examples/compare_int_sflow.py        (~1 min)
      python examples/compare_int_sflow.py tiny   (seconds, noisier)
"""

import sys

import numpy as np

from repro.datasets import cached_dataset
from repro.features import extract_features
from repro.ml import (
    RandomForestClassifier,
    StandardScaler,
    classification_report,
    train_test_split,
)
from repro.traffic import AttackType

profile = sys.argv[1] if len(sys.argv) > 1 else "small"
print(f"building the '{profile}' campaign (cached per process)...")
ds = cached_dataset(profile)
print(
    f"  {len(ds.trace)} packets on the wire -> "
    f"{len(ds.int_records)} INT reports, {len(ds.sflow_records)} sFlow samples"
)

for source, records, labels in (
    ("int", ds.int_records, ds.int_labels),
    ("sflow", ds.sflow_records, ds.sflow_labels),
):
    fm = extract_features(records, source=source)
    Xtr, Xte, ytr, yte = train_test_split(fm.X, labels, test_size=0.1, seed=0)
    scaler = StandardScaler().fit(Xtr)
    model = RandomForestClassifier(
        n_estimators=20, max_depth=12, max_samples=30000, seed=0
    ).fit(scaler.transform(Xtr), ytr)
    rep = classification_report(yte, model.predict(scaler.transform(Xte)))
    print(
        f"{source:>5s}: accuracy={rep['accuracy']:.4f} recall={rep['recall']:.4f} "
        f"precision={rep['precision']:.4f} f1={rep['f1']:.4f} "
        f"(test n={len(yte)})"
    )

# --- the sampling blind spot -------------------------------------------
sl_windows = [
    (s, e) for t, s, e in ds.schedule.sim_windows() if t == AttackType.SLOWLORIS
]
sl_packets = sum(
    len(ds.trace.time_slice(s, e)) for s, e in sl_windows
)
ts = ds.sflow_records["ts_sample"]
sl_samples = 0
for s, e in sl_windows:
    sl_samples += int(((ts >= s) & (ts < e)).sum())
print(
    f"\nSlowLoris episodes carried {sl_packets} packets; "
    f"sFlow (1:{ds.config.sflow_rate}) sampled {sl_samples} of them."
)
print("A sampling-based monitor cannot alert on what it never sees —")
print("the paper's Fig 5 finding, reproduced.")
