#!/usr/bin/env python
"""The live automated DDoS detection mechanism on the Fig 6 testbed.

Reproduces the paper's §IV-C experiment flow:

1. pre-train the MLP/RF/GNB panel on a testbed replay of benign + three
   attack types (SlowLoris deliberately left out — it plays the zero-day
   role);
2. replay ~2500 packets per flow type through the single-switch INT
   testbed;
3. run the four-module mechanism live (collection → processor → database
   ⇄ central server ⇄ prediction, 2-of-3 vote, last-3 decision window);
4. print the Table VI-style scorecard with real wall-clock prediction
   latencies.

Run:  python examples/automated_detection_testbed.py
"""

from repro.analysis import run_testbed_study
from repro.analysis.report import exp_fig7, exp_table6

print("pre-training panel and replaying five flow types (~30 s)...\n")
study = run_testbed_study("small", seed=0)

print(exp_table6())
print()
print(exp_fig7())
print()
print(
    "Note the SlowLoris row: the panel never saw a SlowLoris flow during "
    "training,\nyet the ensemble flags it — and its misclassifications "
    "cluster at flow starts,\nwhere a trickling connection is still "
    "indistinguishable from a fresh handshake\n(the paper's Fig 7b "
    "observation)."
)
