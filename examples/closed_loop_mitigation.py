#!/usr/bin/env python
"""Closing the loop: detection → episodes → controller → enforcement.

The paper detects but explicitly does not mitigate (§III fn.2, future
work).  This example runs the full closed loop the paper points toward,
on the fault-tolerant control plane:

1. pre-train the detection panel on a benign + flood + scan replay;
2. start a *live* simulation: a victim web server under benign load,
   then a spoofed SYN flood plus a port scan arrive;
3. the detector flags flows in-stream; a
   :class:`~repro.mitigation.MitigationController` turns flagged flows
   into auto-expiring blocks (flow tier), an
   :class:`~repro.controlplane.EpisodeBridge` aggregates decisions into
   per-service episodes and escalates them once each (sweep → block the
   probing host, flood → rate-limit the victim service), and every
   action lands in the edge switch's ACL;
4. the operator command API inspects and adjusts the running controller;
5. compare attack packets reaching the server with and without the loop.

Run:  python examples/closed_loop_mitigation.py
"""

import json

from repro.controlplane import EpisodeBridge
from repro.core import AutomatedDDoSDetector, pretrain_from_records
from repro.datasets import SERVER_IP, CampaignConfig, monitored_topology
from repro.datasets.amlight import _build_truth_map, label_records
from repro.mitigation import (
    AclTable,
    MitigationConfig,
    MitigationController,
    ThresholdRule,
    attach_acl,
)
from repro.traffic import Replayer, generate_benign, merge_traces, syn_flood, syn_scan
from repro.traffic.benign import BenignConfig

SEC = 1_000_000_000
ATTACKER = 0xCB007107  # the scanning host

#: Operator policy: flow tier blocks hot flagged flows for 30 s; the
#: episode tier (via the bridge) rate-limits a flooded service and
#: blocks sweeping sources outright.
POLICY = MitigationConfig(
    rules=(
        ThresholdRule(name="hot-flow-block", pps_above=50.0, packets_above=3,
                      combine="and", scope="flow", action="block",
                      ttl_ns=30 * SEC),
    ),
    episode_rate_pps=60.0,
    episode_ttl_ns=60 * SEC,
)


def workload(seed):
    benign = generate_benign(
        SERVER_IP, 80, 0, 12 * SEC,
        BenignConfig(sessions_per_s=4, mean_think_ns=3_000_000, rtt_ns=100_000),
        seed=seed,
    )
    flood = syn_flood(SERVER_IP, 80, 3 * SEC, 9 * SEC, rate_pps=2500,
                      seed=seed + 1)
    scan = syn_scan(ATTACKER, SERVER_IP, 4 * SEC, 10 * SEC, rate_pps=400,
                    seed=seed + 2)
    return merge_traces([benign, flood, scan])


def run(mitigate: bool):
    cfg = CampaignConfig.tiny()
    topo, int_col, _sflow, _agent = monitored_topology(cfg)
    edge = topo.switches["edge_client"]
    server = topo.hosts["webserver"]

    # ACL first, then telemetry (attach order matters: blocked packets
    # should not keep feeding the detector)
    acl = attach_acl(edge) if mitigate else AclTable()

    detector = AutomatedDDoSDetector(BUNDLE, fast_poll=True)
    detector.attach_live(int_col)
    controller = bridge = None
    if mitigate:
        controller = MitigationController(POLICY, tables=[acl])
        controller.attach_to(detector)
        bridge = EpisodeBridge(controller).attach_inline(detector)

    replayer = Replayer(
        topo,
        {"fwd": (edge, 1), "rev": (topo.switches["edge_server"], 2)},
        classify=lambda row: "fwd" if row["dst_ip"] == SERVER_IP else "rev",
    )
    replayer.schedule(workload(seed=31))
    # interleave simulation slices with CentralServer cycles — the live
    # cooperative loop of Fig 2
    peeked = False
    while topo.events.peek_time() is not None:
        topo.run(max_events=2000)
        detector.live_cycle(budget=512)
        if mitigate and not peeked and controller.counters["rules_installed"]:
            # operator control surface, mid-run: inspect, then tighten
            # the episode rate limit on the fly
            peeked = True
            blocked = controller.command({"op": "blocked_list"})
            print(f"  [operator] first blocks live: "
                  f"{len(blocked['result'])} entries")
            controller.command({
                "op": "set_config",
                "config": {"episode_rate_pps": 40.0},
            })
    detector.finish()

    stats = {"server_received": server.received, "acl": acl}
    if mitigate:
        stats["controller"] = controller.stats()
        stats["bridge"] = bridge.stats()
    return stats


# --- offline pre-training (shared by both runs) --------------------------
print("pre-training the panel on a benign+flood+scan replay...")
cfg = CampaignConfig.tiny()
_topo, _col, _s, _a = monitored_topology(cfg)
_trace = workload(seed=7)
Replayer(
    _topo,
    {"fwd": (_topo.switches["edge_client"], 1),
     "rev": (_topo.switches["edge_server"], 2)},
    classify=lambda row: "fwd" if row["dst_ip"] == SERVER_IP else "rev",
).replay(_trace)
_records = _col.to_records()
_labels, _ = label_records(_records, _build_truth_map(_trace))
BUNDLE = pretrain_from_records(_records, _labels, source="int", seed=0)

print("\nrun 1: detection only (no enforcement)")
base = run(mitigate=False)
print(f"  server received {base['server_received']} packets")

print("\nrun 2: closed loop (controller + episode bridge drive the edge ACL)")
closed = run(mitigate=True)
acl = closed["acl"]
ctrl_stats = closed["controller"]
print(f"  server received {closed['server_received']} packets")
print(f"  ACL: {acl.dropped} dropped, {acl.rate_limited} rate-limited, "
      f"{acl.installed} rules installed")
print(f"  controller: {json.dumps(ctrl_stats['counters'])}")
print(f"  episodes: {closed['bridge']}")

saved = base["server_received"] - closed["server_received"]
print(f"\nthe loop kept {saved} attack-dominated packets "
      f"({saved / base['server_received']:.0%} of the victim's load) off the server.")
