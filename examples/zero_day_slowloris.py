#!/usr/bin/env python
"""Zero-day evaluation: can models trained without SlowLoris catch it?

The paper's Table IV protocol: June 11 — which contains both SYN floods
*and* the only two SlowLoris episodes of the campaign — is held out as
the test set, so SlowLoris is a genuinely unseen ("zero-day") attack.
This script runs that protocol for all four models on both telemetry
sources and breaks INT recall down per attack type so the zero-day
behaviour is visible directly.

Run:  python examples/zero_day_slowloris.py
"""

import numpy as np

from repro.analysis.experiments import MODEL_ORDER, model_zoo
from repro.datasets import cached_dataset
from repro.features import extract_features
from repro.ml import StandardScaler, classification_report
from repro.traffic import AttackType

print("building the campaign (cached per process)...")
ds = cached_dataset("small")
boundary = ds.day_start_ns(11)

for source, records, labels, types, ts in (
    ("INT", ds.int_records, ds.int_labels, ds.int_types,
     ds.int_records["ts_report"]),
    ("sFlow", ds.sflow_records, ds.sflow_labels, ds.sflow_types,
     ds.sflow_records["ts_sample"]),
):
    fm = extract_features(records, source=source.lower())
    test = np.asarray(ts) >= boundary
    Xtr, ytr = fm.X[~test], labels[~test]
    Xte, yte = fm.X[test], labels[test]
    types_te = types[test]
    scaler = StandardScaler().fit(Xtr)
    Xtr_s, Xte_s = scaler.transform(Xtr), scaler.transform(Xte)

    print(f"\n== {source}: train Jun 6-10 ({len(ytr)} rows), "
          f"test Jun 11 ({len(yte)} rows) ==")
    for name in MODEL_ORDER:
        model = model_zoo(seed=0)[name]()
        model.fit(Xtr_s, ytr)
        pred = model.predict(Xte_s)
        rep = classification_report(yte, pred)
        line = (f"  {name:4s} acc={rep['accuracy']:.4f} "
                f"recall={rep['recall']:.4f} precision={rep['precision']:.4f}")
        per_type = []
        for at in (AttackType.SYN_FLOOD, AttackType.SLOWLORIS):
            mask = types_te == int(at)
            if mask.any():
                per_type.append(f"{at.display} recall={pred[mask].mean():.2f}")
        if per_type:
            line += "   [" + ", ".join(per_type) + "]"
        print(line)

print(
    "\nThe paper's qualitative findings to look for: INT models stay "
    "accurate on the\nunseen day; sFlow's weaker models (GNB precision, "
    "NN) degrade visibly because\nthe sampled training set never "
    "contained anything SlowLoris-like at all."
)
