#!/usr/bin/env python
"""Sketch-gated detection under a spoofed-source flood.

A spoofed SYN flood creates one new five-tuple per packet — the exact
``FlowTable`` grows linearly with attack volume and the table itself
becomes the bottleneck the attacker is aiming for.  This demo runs the
same mixed stream (benign conversations + a 40k-source spoofed flood)
through two detectors:

* the **exact** path — every five-tuple gets a full FlowRecord;
* the **sketch-gated** path — every packet updates a 4 MB count-min
  sketch, only flows promoted past the heavy-hitter threshold get exact
  records, and the spoofed one-packet flows aggregate into per-prefix
  residual stats instead of table entries.

Both detectors see identical telemetry; the scorecard shows what the
gate buys (resident flows, memory) and what it costs (nothing, here:
one-packet spoofed flows never produce windowed decisions anyway).

Run:  python examples/sketch_scaling.py
"""

import numpy as np

from repro.core import AutomatedDDoSDetector, pretrain
from repro.features import extract_features
from repro.int_telemetry import REPORT_DTYPE
from repro.ml import GaussianNB, RandomForestClassifier
from repro.sketch import SketchConfig

N_SPOOFED = 40_000
N_BENIGN = 150


def build_stream(seed=0):
    """Benign conversations (12 pkts each, :443) + spoofed flood (one
    64-byte packet per source, :80), interleaved in time."""
    rng = np.random.default_rng(seed)
    rows = []
    for f in range(N_BENIGN):
        for p in range(12):
            rows.append((1 + f, 42, 20_000 + f, 443,
                         int(rng.integers(400, 1500)), p * 50 + f))
    # Victim IP above the spoofed range so the *source* is canonical
    # endpoint A — residual prefixes then name the attack origin.
    victim = (203 << 24) | 1
    for s in range(N_SPOOFED):
        rows.append(((10 << 24) | (s * 4), victim,
                     30_000 + (s % 30_000), 80, 64, s))
    arr = np.array(rows, dtype=np.int64)
    order = np.argsort(arr[:, 5], kind="stable")
    arr = arr[order]
    rec = np.zeros(arr.shape[0], dtype=REPORT_DTYPE)
    ts = np.arange(arr.shape[0], dtype=np.int64) * 2_000
    rec["ts_report"] = ts
    rec["ingress_ts"] = ts % 2**32
    rec["egress_ts"] = ts % 2**32
    rec["src_ip"] = arr[:, 0]
    rec["dst_ip"] = arr[:, 1]
    rec["src_port"] = arr[:, 2]
    rec["dst_port"] = arr[:, 3]
    rec["protocol"] = 6
    rec["length"] = arr[:, 4]
    return rec


def main():
    stream = build_stream()
    print(f"stream: {stream.shape[0]:,} packets "
          f"({N_SPOOFED:,} spoofed sources, {N_BENIGN} benign flows)\n")

    fm = extract_features(stream, source="int")
    y = (fm.X[:, fm.names.index("packet_size")] < 200).astype(int)
    bundle = pretrain(
        fm.X, y, fm.names,
        panel={
            "rf": lambda: RandomForestClassifier(
                n_estimators=5, max_depth=8, seed=0
            ),
            "gnb": lambda: GaussianNB(),
        },
    )

    results = {}
    for name, sketch in (
        ("exact", None),
        ("sketch-gated", SketchConfig(width=1024, depth=4, partitions=64,
                                      promote_packets=8)),
    ):
        det = AutomatedDDoSDetector(
            bundle, batched=True, fast_poll=True, sketch=sketch
        )
        db = det.run_stream(stream, poll_every=256, cycle_budget=512)
        results[name] = (det, db)

    det_e, db_e = results["exact"]
    det_g, db_g = results["sketch-gated"]
    print(f"{'':24}{'exact':>12}{'gated':>12}")
    print(f"{'resident flows':24}{len(det_e.db.flows):>12,}"
          f"{len(det_g.db.flows):>12,}")
    print(f"{'flows created':24}{det_e.db.flows.created:>12,}"
          f"{det_g.db.flows.created:>12,}")
    print(f"{'predictions stored':24}{len(db_e.predictions):>12,}"
          f"{len(db_g.predictions):>12,}\n")

    sk = det_g.stats()["sketch"]
    print("sketch gate stats:")
    for k in ("kind", "width", "depth", "partitions", "memory_bytes",
              "windows", "promotions", "demotions", "rejected_packets",
              "residual_packets", "residual_bytes", "residual_prefixes",
              "mean_relative_overestimate"):
        print(f"  {k:28} {sk[k]}")
    print("\nheaviest residual prefixes (the flood, seen without a "
          "single FlowRecord):")
    for cidr, pkts, byts in det_g.sketch_gate.residual.top_prefixes(4):
        print(f"  {cidr:20} {pkts:>10,} pkts {byts:>14,} bytes")


if __name__ == "__main__":
    main()
