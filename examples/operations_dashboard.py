#!/usr/bin/env python
"""Operations view: alerts, microbursts, and telemetry overhead.

Everything an AmLight operator would watch, from one INT capture:

* episode-level DDoS **alerts** (the control-plane integration the
  paper's abstract promises) — opened/updated/closed per attacked
  service, with severity;
* **microburst** events from the same queue-occupancy telemetry (the
  group's earlier NOMS'23 use case);
* the INT **wire overhead** the monitoring itself costs, at full INT
  and under PINT-style temporal sampling.

Run:  python examples/operations_dashboard.py
"""

import numpy as np

from repro.analysis.microburst import detect_microbursts
from repro.controlplane import AlertManager, LogSink
from repro.core import AutomatedDDoSDetector, pretrain_from_records
from repro.datasets import SERVER_IP, CampaignConfig, monitored_topology
from repro.datasets.amlight import _build_truth_map, label_records
from repro.int_telemetry import overhead_report
from repro.traffic import Replayer, generate_benign, merge_traces, syn_flood, syn_scan
from repro.traffic.benign import BenignConfig

SEC = 1_000_000_000


def capture(trace):
    cfg = CampaignConfig.tiny()
    topo, col, _s, _a = monitored_topology(cfg)
    Replayer(
        topo,
        {"fwd": (topo.switches["edge_client"], 1),
         "rev": (topo.switches["edge_server"], 2)},
        classify=lambda row: "fwd" if row["dst_ip"] == SERVER_IP else "rev",
    ).replay(trace)
    return col.to_records()


# --- build a morning of traffic with two incidents ----------------------
benign = generate_benign(
    SERVER_IP, 80, 0, 25 * SEC,
    BenignConfig(sessions_per_s=4, mean_think_ns=3_000_000, rtt_ns=100_000),
    seed=11,
)
flood = syn_flood(SERVER_IP, 80, 6 * SEC, 10 * SEC, rate_pps=3000, seed=12)
scan = syn_scan(0xCB007107, SERVER_IP, 14 * SEC, 19 * SEC, rate_pps=500, seed=13)
trace = merge_traces([benign, flood, scan])
records = capture(trace)
print(f"captured {len(records)} INT reports from {len(trace)} packets\n")

# --- pre-train, then stream with alerting attached -----------------------
labels, _ = label_records(records, _build_truth_map(trace))
bundle = pretrain_from_records(records, labels, source="int", seed=0)

detector = AutomatedDDoSDetector(bundle, fast_poll=True)
sink = LogSink(echo=True)
alerts = AlertManager(server_ips={SERVER_IP}, open_threshold=5,
                      window_ns=2 * SEC, quiet_ns=2 * SEC, sinks=[sink])
alerts.attach_to(detector)

print("=== alert feed (live) ===")
fresh = capture(trace)  # a second, independent replay plays "today"
detector.run_stream(fresh)
alerts.close_all(int(fresh["ts_report"].max()) + 3 * SEC)

print(f"\n{len(alerts.alerts)} alert(s) total:")
for a in alerts.alerts:
    print(f"  service port {a.service[1]}: severity={a.severity.name} "
          f"flows={a.n_flows} duration={a.duration_ns / 1e9:.2f}s")

# --- microbursts from the same telemetry ---------------------------------
bursts = detect_microbursts(records, threshold=2, window_ns=10_000_000)
print(f"\n=== microbursts (queue occupancy >= 2) ===")
print(f"{len(bursts)} events; worst: "
      + (f"{max(b.peak_occupancy for b in bursts)} packets deep"
         if bursts else "none"))

# --- what the monitoring itself costs ------------------------------------
over = overhead_report(records, total_packets=len(trace))
print(f"\n=== telemetry overhead ===")
print(f"full INT: {over['mean_bytes_per_packet']:.1f} B/packet "
      f"({over['mean_hops_recorded']:.1f} hops recorded per report)")
print("see benchmarks/bench_ablation_pint.py for the PINT sampling "
      "accuracy/overhead curve")
