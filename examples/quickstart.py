#!/usr/bin/env python
"""Quickstart: detect a SYN flood from INT telemetry in ~30 lines.

Builds a tiny monitored network, replays benign web traffic with a SYN
flood injected in the middle, extracts per-packet flow features from the
INT telemetry, trains a random forest, and scores it — the essential
pipeline of the AmLight paper end to end.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.datasets import CampaignConfig, SERVER_IP, monitored_topology
from repro.datasets.amlight import label_records, _build_truth_map
from repro.features import extract_features
from repro.ml import RandomForestClassifier, StandardScaler, train_test_split, classification_report
from repro.traffic import Replayer, generate_benign, merge_traces, syn_flood
from repro.traffic.benign import BenignConfig

SEC = 1_000_000_000

# --- 1. a monitored network (3 switches, INT on both directions) -------
cfg = CampaignConfig.tiny()
topo, int_collector, _sflow, _agent = monitored_topology(cfg)

# --- 2. traffic: 10 s of web sessions + a 2 s flood in the middle -----
benign = generate_benign(
    SERVER_IP, 80, 0, 10 * SEC,
    BenignConfig(sessions_per_s=3, mean_think_ns=3_000_000, rtt_ns=100_000),
    seed=1,
)
flood = syn_flood(SERVER_IP, 80, 4 * SEC, 6 * SEC, rate_pps=3000, seed=2)
trace = merge_traces([benign, flood])
print(f"replaying {len(trace)} packets ({trace.attack_fraction():.0%} attack)")

replayer = Replayer(
    topo,
    {"fwd": (topo.switches["edge_client"], 1),
     "rev": (topo.switches["edge_server"], 2)},
    classify=lambda row: "fwd" if row["dst_ip"] == SERVER_IP else "rev",
)
replayer.replay(trace)

# --- 3. features + labels from the INT capture -------------------------
records = int_collector.to_records()
features = extract_features(records, source="int")
labels, _types = label_records(records, _build_truth_map(trace))
print(f"captured {len(records)} INT reports -> {features.X.shape[1]} features/packet")

# --- 4. train and score -------------------------------------------------
X_train, X_test, y_train, y_test = train_test_split(
    features.X, labels, test_size=0.1, seed=0
)
scaler = StandardScaler().fit(X_train)
model = RandomForestClassifier(n_estimators=15, max_depth=10, seed=0)
model.fit(scaler.transform(X_train), y_train)

report = classification_report(y_test, model.predict(scaler.transform(X_test)))
print(
    f"RF on INT features: accuracy={report['accuracy']:.4f} "
    f"recall={report['recall']:.4f} precision={report['precision']:.4f} "
    f"f1={report['f1']:.4f}"
)

top = np.argsort(model.feature_importances_)[::-1][:3]
print("top features:", [features.names[i] for i in top])
