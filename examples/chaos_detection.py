#!/usr/bin/env python
"""Detection under telemetry chaos: the Table VI replay with faults.

Production telemetry is not the clean testbed feed of §IV-C: under the
very flood the detector exists to catch, INT reports are dropped in
bursts (congested collector path), duplicated, and reordered.  This
example injects exactly that — a Gilbert-Elliott burst-loss channel
tuned to ~10% long-run loss, plus duplication and bounded reordering —
between the replay and the collection module, and shows the mechanism
degrading gracefully instead of falling over:

1. replay the testbed experiment clean (the Table VI baseline);
2. replay it again through a seeded ``FaultInjector``;
3. print the per-attack-type accuracy deltas and the injector's fault
   accounting — the acceptance bar is "within 5 points of clean";
4. poison the RF panel member mid-replay and show quarantine + a
   DEGRADED watchdog alert while the remaining two members keep
   detecting the flood.

Run:  python examples/chaos_detection.py
"""

from repro.resilience import ChaosSchedule
from repro.resilience.harness import ResilienceHarness

# ~10% long-run burst loss: bad state entered w.p. 0.05, left w.p. 0.45,
# loses every report while bad -> 0.05/(0.05+0.45) = 10%.
SCHEDULE = ChaosSchedule(
    burst_p=0.05,
    burst_r=0.45,
    burst_loss=1.0,
    duplicate_rate=0.05,
    reorder_rate=0.05,
    reorder_depth=8,
)


def main() -> None:
    harness = ResilienceHarness(profile="small", seed=0, n_packets=2500)

    print(f"chaos schedule: {SCHEDULE.describe()}")
    print(f"expected long-run loss: {SCHEDULE.expected_loss:.1%}\n")

    report = harness.run(SCHEDULE)
    print(report.render())
    print(f"\nworst accuracy drop: {report.max_accuracy_drop:+.4f} "
          "(acceptance bar: <= 0.05 on trained types)")

    print("\n--- forced single-member failure (rf poisoned mid-replay) ---")
    result = harness.run_model_failure("rf", flow_type="SYN Flood",
                                       fail_after=50)
    print(f"quarantined: {result.quarantined}")
    print(f"degraded, not crashed: {result.degraded_not_crashed}")
    print(f"SYN Flood accuracy with 2 surviving members: "
          f"{result.accuracy:.4f} over {result.predictions} predictions")
    for alert in result.alerts:
        print(f"  alert: [{alert.module}] {alert.previous.name} -> "
              f"{alert.state.name}: {alert.reason}")


if __name__ == "__main__":
    main()
