"""Performance benchmarks: the hot paths of the pipeline.

Not paper reproductions — these keep regressions measurable for the
computational cores: the discrete-event engine, bulk feature extraction,
model training/inference, and the live detector's per-record throughput
(the paper's §V scaling concern in micro form).

This module is also the **perf-trajectory harness**: every test records
its throughput into a module-level scoreboard, which is written to
``benchmarks/BENCH_pipeline.json`` at teardown.  The committed copy of
that file is the baseline; :func:`test_perf_detector_batched_vs_scalar`
fails when the batched/scalar speedup ratio regresses more than
``REGRESSION_TOLERANCE`` below it (the ratio, unlike absolute records/s,
is machine-independent, so the gate works on any CI runner).

``PERF_PROFILE=quick`` shrinks workloads for CI; the committed baseline
is produced by a quick run so CI compares like with like.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import AutomatedDDoSDetector, pretrain
from repro.core.database import PredictionEntry
from repro.dataplane import EventQueue
from repro.features import extract_features
from repro.features.flow_table import FlowTable
from repro.int_telemetry import REPORT_DTYPE
from repro.ml import GaussianNB, RandomForestClassifier

PROFILE = os.environ.get("PERF_PROFILE", "full")
QUICK = PROFILE == "quick"

N_EVENTS = 20_000 if QUICK else 100_000
N_EXTRACT = 20_000 if QUICK else 100_000
N_TRAIN = 10_000 if QUICK else 50_000
N_PREDICT = 20_000 if QUICK else 100_000
N_DETECTOR = 6_000 if QUICK else 20_000
# Shard scaling needs enough stream for per-worker compute to dominate
# process startup, or the scaling curve measures fork latency.
N_SHARD = 40_000 if QUICK else 100_000

#: Worker counts for the shard-scaling bench (CI overrides via env).
SHARD_COUNTS = [
    int(c) for c in os.environ.get("SHARD_COUNTS", "1,2,4").split(",") if c.strip()
]

BENCH_PATH = Path(__file__).parent / "BENCH_pipeline.json"
#: Allowed relative drop of the batched/scalar speedup vs the baseline.
REGRESSION_TOLERANCE = 0.20
#: The tentpole's floor: batched end-to-end must beat scalar by this much.
MIN_SPEEDUP = 5.0

#: Floor for the 4-worker sharded speedup over 1-worker sharded —
#: asserted only where >= 4 *usable* CPUs exist to scale onto.
MIN_SHARD_SPEEDUP_4X = 1.6

#: Ceiling for 1-worker sharded wall time over the batched reference —
#: the frame-protocol overhead bound.  Needs >= 2 usable CPUs: with one
#: core, coordinator and worker serialize and wall time measures the
#: scheduler, not the protocol.
MAX_SHARD_1_OVERHEAD = 1.15

#: Sentinel recorded in place of a ratio whose gate had too few usable
#: CPUs to be meaningful — an honest "could not measure" instead of a
#: number that looks like a regression (or a vacuous pass).
SKIPPED = "skipped_insufficient_cpus"


def usable_cpus() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the host; containers and CI runners pin
    processes to a subset via affinity masks, and a scaling ratio
    measured against CPUs we cannot schedule onto is fiction.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1

#: name -> records/s, filled by the tests, dumped at module teardown.
RATES = {}
#: Shard-scaling curve of this run (worker count -> rate, CPU count).
SHARD_SCALING = {}


@pytest.fixture(scope="module", autouse=True)
def perf_scoreboard():
    yield
    if not RATES:
        return
    payload = {
        "profile": PROFILE,
        "rates_per_s": {k: round(v, 1) for k, v in sorted(RATES.items())},
    }
    if "detector_scalar" in RATES and "detector_batched" in RATES:
        payload["detector_speedup"] = round(
            RATES["detector_batched"] / RATES["detector_scalar"], 2
        )
    if SHARD_SCALING:
        payload["shard_scaling"] = SHARD_SCALING
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {BENCH_PATH}")


def _baseline_speedup():
    if not BENCH_PATH.exists():
        return None
    try:
        return json.loads(BENCH_PATH.read_text()).get("detector_speedup")
    except (ValueError, OSError):
        return None


def _rate(n, seconds):
    return n / seconds if seconds > 0 else float("inf")


def _timed(benchmark, fn, *args):
    """Run through pytest-benchmark when enabled, else one timed call
    (so ``--benchmark-disable`` runs still feed the scoreboard)."""
    if getattr(benchmark, "enabled", True):
        result = benchmark(fn, *args)
        return result, benchmark.stats["mean"]
    t0 = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - t0


def test_perf_event_engine(benchmark):
    """Schedule + drain chained events."""

    def run():
        eq = EventQueue()
        remaining = [N_EVENTS]

        def tick(_):
            remaining[0] -= 1
            if remaining[0] > 0:
                eq.schedule_in(10, tick)

        eq.schedule(0, tick)
        eq.run()
        return eq.processed

    processed, mean_s = _timed(benchmark, run)
    assert processed == N_EVENTS
    RATES["event_engine"] = _rate(N_EVENTS, mean_s)


@pytest.fixture(scope="module")
def synth_records():
    rng = np.random.default_rng(0)
    n = 100_000
    rec = np.zeros(n, dtype=REPORT_DTYPE)
    ts = np.sort(rng.integers(0, 10**10, size=n))
    rec["ts_report"] = ts
    rec["ingress_ts"] = ts % 2**32
    rec["egress_ts"] = ts % 2**32
    rec["src_ip"] = rng.integers(1, 5000, size=n)
    rec["dst_ip"] = 42
    rec["src_port"] = rng.integers(1024, 65535, size=n)
    rec["dst_port"] = 80
    rec["protocol"] = 6
    rec["length"] = rng.integers(40, 1500, size=n)
    return rec


def test_perf_feature_extraction(benchmark, synth_records):
    """Vectorized per-packet features over a record slice."""
    sub = synth_records[:N_EXTRACT]
    fm, mean_s = _timed(benchmark, extract_features, sub, "int")
    assert fm.X.shape == (N_EXTRACT, 15)
    RATES["extraction"] = rate = _rate(N_EXTRACT, mean_s)
    print(f"\nextraction throughput: {rate / 1e6:.2f} M records/s")


def test_perf_flow_ingest_batch_vs_scalar(synth_records):
    """FlowTable fold: per-packet ``update`` vs ``update_batch`` slices."""
    from repro.core.collection import IntDataCollection
    from repro.core.database import FlowDatabase
    from repro.core.processor import DataProcessor
    from repro.features import feature_names

    sub = synth_records[:N_DETECTOR]
    names = feature_names("int")

    def build():
        db = FlowDatabase(FlowTable(), fast_poll=True)
        return IntDataCollection(DataProcessor(db, names)), db

    coll_s, db_s = build()
    t0 = time.perf_counter()
    for i in range(sub.shape[0]):
        coll_s.feed_record(sub[i])
    scalar_s = time.perf_counter() - t0

    coll_b, db_b = build()
    t0 = time.perf_counter()
    for start in range(0, sub.shape[0], 128):
        coll_b.feed_batch(sub[start : start + 128])
    batch_s = time.perf_counter() - t0

    assert db_s.flows.created == db_b.flows.created
    assert db_s.updates_registered == db_b.updates_registered
    RATES["ingest_scalar"] = _rate(sub.shape[0], scalar_s)
    RATES["ingest_batch"] = _rate(sub.shape[0], batch_s)
    print(
        f"\ningest scalar {RATES['ingest_scalar']:,.0f} rec/s, "
        f"batch {RATES['ingest_batch']:,.0f} rec/s "
        f"({scalar_s / batch_s:.1f}x)"
    )
    assert batch_s < scalar_s, "batched ingest slower than scalar"


def test_perf_rf_train(benchmark):
    rng = np.random.default_rng(0)
    X = rng.normal(size=(N_TRAIN, 15))
    y = (X[:, 0] + X[:, 3] > 0).astype(int)

    def run():
        return RandomForestClassifier(
            n_estimators=10, max_depth=10, max_samples=N_TRAIN // 2, seed=0
        ).fit(X, y)

    model, mean_s = _timed(benchmark, run)
    assert model.score(X[:5000], y[:5000]) > 0.9
    RATES["rf_train"] = _rate(N_TRAIN, mean_s)


def test_perf_rf_predict(benchmark):
    rng = np.random.default_rng(0)
    X = rng.normal(size=(20_000, 15))
    y = (X[:, 0] > 0).astype(int)
    model = RandomForestClassifier(n_estimators=10, max_depth=10, seed=0).fit(X, y)
    Xq = rng.normal(size=(N_PREDICT, 15))
    preds, mean_s = _timed(benchmark, model.predict, Xq)
    assert preds.shape == (N_PREDICT,)
    RATES["rf_predict"] = _rate(N_PREDICT, mean_s)


def test_perf_prediction_entry_fast(benchmark):
    """PredictionEntry.fast vs the generated frozen-dataclass init."""
    args = ((1, 2, 3, 4, 6), 10, 20, 35, 1, (1, 0), 1)
    loops = 10_000

    t0 = time.perf_counter()
    for _ in range(loops):
        PredictionEntry(*args)
    init_s = time.perf_counter() - t0
    RATES["entry_init"] = _rate(loops, init_s)

    def run():
        for _ in range(loops):
            PredictionEntry.fast(*args)

    _, mean_s = _timed(benchmark, run)
    RATES["entry_fast"] = _rate(loops, mean_s)
    assert PredictionEntry.fast(*args) == PredictionEntry(*args)


@pytest.fixture(scope="module")
def detector_bundle(synth_records):
    sub = synth_records[:N_DETECTOR]
    fm = extract_features(sub, source="int")
    y = (fm.X[:, fm.names.index("packet_size")] < 200).astype(int)
    return pretrain(
        fm.X, y, fm.names,
        panel={"rf": lambda: RandomForestClassifier(n_estimators=5, max_depth=8, seed=0),
               "gnb": lambda: GaussianNB()},
    )


def test_perf_detector_stream(benchmark, synth_records, detector_bundle):
    """Live mechanism throughput, batched hot path (records/second)."""
    sub = synth_records[:N_DETECTOR]

    def run():
        det = AutomatedDDoSDetector(detector_bundle, fast_poll=True, batched=True)
        db = det.run_stream(sub, poll_every=128, cycle_budget=256)
        return len(db.predictions)

    n, mean_s = _timed(benchmark, run)
    assert n == N_DETECTOR
    rate = _rate(n, mean_s)
    print(f"\ndetector throughput (batched): {rate:,.0f} records/s")


def test_perf_detector_batched_vs_scalar(synth_records, detector_bundle):
    """The tentpole gate: batched end-to-end must beat the scalar path
    by :data:`MIN_SPEEDUP` in the *same* run, on identical output, and
    must not regress vs the committed baseline ratio."""
    sub = synth_records[:N_DETECTOR]
    baseline = _baseline_speedup()  # read before the scoreboard overwrites

    def run(batched, repeats=3):
        # Best-of-N: a single lap on a shared single-core runner can be
        # 2x off (GC, noisy neighbours); the min is the honest rate.
        best, db = None, None
        for _ in range(repeats):
            det = AutomatedDDoSDetector(detector_bundle, fast_poll=True)
            t0 = time.perf_counter()
            db = det.run_stream(sub, poll_every=128, cycle_budget=256,
                                batched=batched)
            dt = time.perf_counter() - t0
            best = dt if best is None else min(best, dt)
        return best, db

    run(True, repeats=1)  # warm both code paths / allocator
    scalar_s, db_s = run(False)
    batch_s, db_b = run(True)

    # Identical work, not just similar: same predictions, same decisions.
    assert len(db_b.predictions) == len(db_s.predictions) == N_DETECTOR
    assert all(
        (a.key, a.label, a.votes, a.final_decision)
        == (b.key, b.label, b.votes, b.final_decision)
        for a, b in zip(db_s.predictions, db_b.predictions)
    )

    RATES["detector_scalar"] = _rate(N_DETECTOR, scalar_s)
    RATES["detector_batched"] = _rate(N_DETECTOR, batch_s)
    speedup = scalar_s / batch_s
    print(
        f"\ndetector scalar {RATES['detector_scalar']:,.0f} rec/s, "
        f"batched {RATES['detector_batched']:,.0f} rec/s ({speedup:.1f}x)"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"batched path only {speedup:.1f}x over scalar (need {MIN_SPEEDUP}x)"
    )
    if baseline is not None:
        floor = baseline * (1.0 - REGRESSION_TOLERANCE)
        assert speedup >= floor, (
            f"batched/scalar speedup {speedup:.1f}x regressed below "
            f"{floor:.1f}x (baseline {baseline:.1f}x - {REGRESSION_TOLERANCE:.0%})"
        )


def test_perf_knn_query():
    """KNN kd-tree lookup: monolithic single-worker query (the
    pre-optimization path) vs the parallel chunked ``_query``.  The
    before/after note lands in the bench output; identity of the results
    is asserted (worker count only partitions query rows)."""
    from repro.ml.knn import KNeighborsClassifier

    rng = np.random.default_rng(0)
    n_train = 20_000 if QUICK else 50_000
    n_query = 10_000 if QUICK else 50_000
    X = rng.normal(size=(n_train, 8))
    y = (X[:, 0] > 0).astype(int)
    model = KNeighborsClassifier(n_neighbors=5).fit(X, y)
    Xq = rng.normal(size=(n_query, 8))

    model._query(Xq[:256])  # warm both paths
    t0 = time.perf_counter()
    dist_before, idx_before = model._tree.query(Xq, k=5)
    before_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    dist_after, idx_after = model._query(Xq)
    after_s = time.perf_counter() - t0

    assert np.array_equal(idx_before, idx_after)
    assert np.array_equal(dist_before, dist_after)
    RATES["knn_query_serial"] = _rate(n_query, before_s)
    RATES["knn_query_parallel"] = _rate(n_query, after_s)
    print(
        f"\nknn query ({n_query} rows, k=5): before (1 worker) "
        f"{before_s * 1e3:.1f} ms, after (workers=-1, chunked) "
        f"{after_s * 1e3:.1f} ms ({before_s / after_s:.2f}x, "
        f"{os.cpu_count()} cpus)"
    )
    # Tolerant floor: on a 1-core box the two are equivalent; the win
    # appears with cores.  Guard only against the parallel path being
    # outright slower.
    assert after_s <= before_s * 1.5 + 0.05


def test_perf_shard_scaling(synth_records, detector_bundle):
    """Horizontal scaling: sharded throughput at each worker count,
    every run gated on byte-identical merged output vs the single-
    process batched reference.

    Methodology (the digest gate is unconditional; the *ratio* gates
    are honest about the host):

    * timing runs use ``checkpoint_every=0`` — the batched reference
      takes no checkpoints, so a cadence-16 sharded run would measure
      snapshot pickling, not the frame protocol;
    * the batched reference is best-of-2 over the *same* stream and is
      the denominator of the 1-worker overhead ratio;
    * every ratio is published only when enough *usable* CPUs
      (``sched_getaffinity``, not ``cpu_count``) exist for it to mean
      anything; otherwise :data:`SKIPPED` is recorded in its place —
      a 1-core container serializes coordinator and worker, so its
      "overhead" is scheduler noise and its "speedup" is always ~1/N.
    """
    from repro.core.sharding import prediction_log_digest

    sub = synth_records[:N_SHARD]
    n_usable = usable_cpus()

    def lap(n_shards=None):
        det = AutomatedDDoSDetector(
            detector_bundle, fast_poll=True, batched=True
        )
        t0 = time.perf_counter()
        if n_shards is None:
            db = det.run_stream(sub, poll_every=128, cycle_budget=256)
        else:
            db = det.run_stream(
                sub, poll_every=128, cycle_budget=256, shards=n_shards,
                checkpoint_every=0,
            )
        return time.perf_counter() - t0, db

    ref_s, db_ref = lap()  # warm lap doubles as the digest reference
    ref_digest = prediction_log_digest(db_ref)
    ref_s = min(ref_s, lap()[0])
    batched_rate = _rate(N_SHARD, ref_s)

    rates = {}
    for n_shards in SHARD_COUNTS:
        best, db = None, None
        for _ in range(2):
            dt, db = lap(n_shards)
            best = dt if best is None else min(best, dt)
        # Equivalence gate — unconditional: the merged prediction log
        # must be result-identical to the single-process batched run.
        assert len(db.predictions) == len(db_ref.predictions)
        assert prediction_log_digest(db) == ref_digest, (
            f"sharded run ({n_shards} workers) diverged from the "
            f"single-process batched output"
        )
        rates[n_shards] = _rate(N_SHARD, best)
        RATES[f"detector_sharded_{n_shards}"] = rates[n_shards]
        print(
            f"\nsharded detector x{n_shards}: {rates[n_shards]:,.0f} rec/s"
        )

    SHARD_SCALING["usable_cpus"] = n_usable
    SHARD_SCALING["host_cpus"] = os.cpu_count() or 1
    SHARD_SCALING["records"] = N_SHARD
    SHARD_SCALING["checkpoint_every"] = 0
    SHARD_SCALING["batched_rate_per_s"] = round(batched_rate, 1)
    SHARD_SCALING["rates_per_s"] = {
        str(k): round(v, 1) for k, v in rates.items()
    }

    if 1 in rates:
        overhead = batched_rate / rates[1]  # >1 means sharding costs
        if n_usable >= 2:
            SHARD_SCALING["sharded_1_overhead_x"] = round(overhead, 2)
            assert overhead <= MAX_SHARD_1_OVERHEAD, (
                f"1-worker sharded run is {overhead:.2f}x the batched "
                f"wall time (bound {MAX_SHARD_1_OVERHEAD}x): frame "
                f"protocol overhead regressed"
            )
        else:
            SHARD_SCALING["sharded_1_overhead_x"] = SKIPPED
            print(
                f"\n1-worker overhead {overhead:.2f}x measured but not "
                f"published ({n_usable} usable cpu(s) < 2: coordinator "
                f"and worker serialize)"
            )
    for n_shards, rate in rates.items():
        if n_shards == 1 or 1 not in rates:
            continue
        speedup = rate / rates[1]
        if n_usable >= n_shards:
            SHARD_SCALING[f"speedup_{n_shards}x"] = round(speedup, 2)
        else:
            SHARD_SCALING[f"speedup_{n_shards}x"] = SKIPPED
            print(
                f"{n_shards}-worker speedup {speedup:.2f}x measured but "
                f"not published ({n_usable} usable cpu(s) < {n_shards})"
            )
    if SHARD_SCALING.get("speedup_4x") not in (None, SKIPPED):
        assert SHARD_SCALING["speedup_4x"] >= MIN_SHARD_SPEEDUP_4X, (
            f"4-worker sharded speedup {SHARD_SCALING['speedup_4x']:.2f}x "
            f"below {MIN_SHARD_SPEEDUP_4X}x on {n_usable} usable cpus"
        )
