"""Performance benchmarks: the hot paths of the pipeline.

Not paper reproductions — these keep regressions measurable for the four
computational cores: the discrete-event engine, bulk feature extraction,
model training/inference, and the live detector's per-record throughput
(the paper's §V scaling concern in micro form).
"""

import numpy as np
import pytest

from repro.core import AutomatedDDoSDetector, pretrain
from repro.dataplane import EventQueue
from repro.features import extract_features
from repro.int_telemetry import REPORT_DTYPE
from repro.ml import GaussianNB, RandomForestClassifier, StandardScaler


def test_perf_event_engine(benchmark):
    """Schedule + drain 100k chained events."""

    def run():
        eq = EventQueue()
        remaining = [100_000]

        def tick(_):
            remaining[0] -= 1
            if remaining[0] > 0:
                eq.schedule_in(10, tick)

        eq.schedule(0, tick)
        eq.run()
        return eq.processed

    processed = benchmark(run)
    assert processed == 100_000


@pytest.fixture(scope="module")
def synth_records():
    rng = np.random.default_rng(0)
    n = 100_000
    rec = np.zeros(n, dtype=REPORT_DTYPE)
    ts = np.sort(rng.integers(0, 10**10, size=n))
    rec["ts_report"] = ts
    rec["ingress_ts"] = ts % 2**32
    rec["egress_ts"] = ts % 2**32
    rec["src_ip"] = rng.integers(1, 5000, size=n)
    rec["dst_ip"] = 42
    rec["src_port"] = rng.integers(1024, 65535, size=n)
    rec["dst_port"] = 80
    rec["protocol"] = 6
    rec["length"] = rng.integers(40, 1500, size=n)
    return rec


def test_perf_feature_extraction(benchmark, synth_records):
    """Vectorized per-packet features over 100k records."""
    fm = benchmark(extract_features, synth_records, "int")
    assert fm.X.shape == (100_000, 15)
    rate = 100_000 / benchmark.stats["mean"]
    print(f"\nextraction throughput: {rate / 1e6:.2f} M records/s")


def test_perf_rf_train(benchmark):
    rng = np.random.default_rng(0)
    X = rng.normal(size=(50_000, 15))
    y = (X[:, 0] + X[:, 3] > 0).astype(int)

    def run():
        return RandomForestClassifier(
            n_estimators=10, max_depth=10, max_samples=20000, seed=0
        ).fit(X, y)

    model = benchmark(run)
    assert model.score(X[:5000], y[:5000]) > 0.9


def test_perf_rf_predict(benchmark):
    rng = np.random.default_rng(0)
    X = rng.normal(size=(20_000, 15))
    y = (X[:, 0] > 0).astype(int)
    model = RandomForestClassifier(n_estimators=10, max_depth=10, seed=0).fit(X, y)
    Xq = rng.normal(size=(100_000, 15))
    preds = benchmark(model.predict, Xq)
    assert preds.shape == (100_000,)


def test_perf_detector_stream(benchmark, synth_records):
    """Live mechanism throughput on 20k records (records/second)."""
    sub = synth_records[:20_000]
    fm = extract_features(sub, source="int")
    y = (fm.X[:, fm.names.index("packet_size")] < 200).astype(int)
    bundle = pretrain(
        fm.X, y, fm.names,
        panel={"rf": lambda: RandomForestClassifier(n_estimators=5, max_depth=8, seed=0),
               "gnb": lambda: GaussianNB()},
    )

    def run():
        det = AutomatedDDoSDetector(bundle, fast_poll=True)
        db = det.run_stream(sub, poll_every=128, cycle_budget=256)
        return len(db.predictions)

    n = benchmark(run)
    assert n == 20_000
    rate = n / benchmark.stats["mean"]
    print(f"\ndetector throughput: {rate:,.0f} records/s")
