"""Resilience: the Table VI replay under telemetry chaos.

The production acceptance gate for the automated mechanism: with 10%
report loss plus duplication and bounded reordering injected into the
telemetry feed, every per-attack-type accuracy must stay within 5
points of the clean Table VI run; and a poisoned ensemble member must
be quarantined (watchdog alert, adjusted quorum) rather than crashing
the mechanism.

Set ``RESILIENCE_PROFILE=tiny`` (CI quick mode) to exercise the fault
paths on a small replay without the strict accuracy gate — tiny traces
are too short for stable per-type accuracies.
"""

import os

from repro.resilience import ChaosSchedule
from repro.resilience.harness import ResilienceHarness

PROFILE = os.environ.get("RESILIENCE_PROFILE", "small")
N_PACKETS = 800 if PROFILE == "tiny" else 2500

#: The acceptance-criterion schedule: 10% uniform drop + duplication +
#: bounded reordering.
ACCEPTANCE = ChaosSchedule(
    drop_rate=0.10,
    duplicate_rate=0.05,
    reorder_rate=0.05,
    reorder_depth=8,
)


def test_resilience_chaos(benchmark):
    harness = ResilienceHarness(profile=PROFILE, seed=0, n_packets=N_PACKETS)
    report = benchmark(lambda: harness.run(ACCEPTANCE))
    print("\n" + report.render())

    # Faults really were injected, in the requested proportions.
    assert report.faults["offered"] > 0
    loss = report.faults["loss_fraction"]
    assert 0.05 <= loss <= 0.15, loss
    assert report.faults["duplicated"] > 0
    assert report.faults["reordered"] > 0

    # Every flow type still produced decisions under chaos.
    for name, row in report.rows.items():
        assert row["chaos_predicted"] > 0, name

    if PROFILE != "tiny":
        # The acceptance gate: within 5 points of the clean run,
        # per attack type (trained types; SlowLoris is the zero-day).
        for name in ResilienceHarness.TRAINED_TYPES:
            row = report.rows[name]
            assert row["accuracy_delta"] >= -0.05, (name, row)
        assert report.max_accuracy_drop <= 0.05 or (
            report.rows.get("SlowLoris", {}).get("accuracy_delta", 0) < -0.05
        )


def test_resilience_model_failure(benchmark):
    harness = ResilienceHarness(profile=PROFILE, seed=0, n_packets=N_PACKETS)
    result = benchmark(lambda: harness.run_model_failure("rf", fail_after=50))

    # Quarantine + alert, not a crash: the mechanism finished the replay
    # with the remaining members and reported DEGRADED health.
    assert result.quarantined
    assert result.degraded_not_crashed
    assert result.predictions > 0
    assert any(
        a.module == "prediction" and a.state.name == "DEGRADED"
        for a in result.alerts
    )
    assert result.stats["quarantined_models"].keys() == {"rf"}
    assert set(result.stats["active_models"]) == {"mlp", "gnb"}
    if PROFILE != "tiny":
        # Two healthy members still detect the flood nearly perfectly.
        assert result.accuracy is not None and result.accuracy > 0.95
