"""Ablation: re-enabling the hop-latency feature the paper dropped.

Table II note: hop latency was collected but excluded because the
authors "were not able to retrieve it on the same scale for all flow
types".  Our simulator retrieves it consistently, so we can ask what the
paper left on the table: train with and without the 16th feature and
compare.  Expected: negligible — at low utilization hop latency is
serialization-dominated and mostly mirrors packet size.
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.datasets import cached_dataset
from repro.features import extract_features
from repro.ml import (
    RandomForestClassifier,
    StandardScaler,
    classification_report,
    train_test_split,
)


def _score(X, y, seed=0):
    Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.1, seed=seed)
    sc = StandardScaler().fit(Xtr)
    rf = RandomForestClassifier(n_estimators=20, max_depth=14,
                                max_samples=30000, seed=seed)
    rf.fit(sc.transform(Xtr), ytr)
    return classification_report(yte, rf.predict(sc.transform(Xte))), rf


def test_ablation_hop_latency(benchmark, dataset):
    def run():
        base = extract_features(dataset.int_records, source="int")
        with_hl = extract_features(dataset.int_records, source="int",
                                   include_hop_latency=True)
        rep_base, _ = _score(base.X, dataset.int_labels)
        rep_hl, rf_hl = _score(with_hl.X, dataset.int_labels)
        hl_rank = int(
            np.argsort(rf_hl.feature_importances_)[::-1].tolist().index(
                with_hl.names.index("hop_latency")
            )
        )
        return rep_base, rep_hl, hl_rank

    rep_base, rep_hl, hl_rank = benchmark(run)
    print("\n" + render_table(
        "Ablation: hop-latency feature (dropped by the paper)",
        ("Feature set", "Accuracy", "Recall", "Precision", "F1"),
        [
            ("15 features (paper default)", rep_base["accuracy"],
             rep_base["recall"], rep_base["precision"], rep_base["f1"]),
            ("16 features (+hop latency)", rep_hl["accuracy"],
             rep_hl["recall"], rep_hl["precision"], rep_hl["f1"]),
        ],
        note=f"hop latency ranks #{hl_rank + 1} of 16 by RF importance — "
        "the paper lost little by dropping it",
    ))
    # dropping hop latency was harmless (paper's implicit claim)
    assert abs(rep_base["accuracy"] - rep_hl["accuracy"]) < 0.01
