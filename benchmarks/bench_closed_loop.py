"""Closed-loop mitigation benchmarks (PR 6).

Mitigation is only deployable if it is (a) fast to react and (b) nearly
free on the hot path.  This module measures both and writes the
scoreboard to ``benchmarks/BENCH_mitigation.json`` at teardown so the
trajectory is tracked alongside ``BENCH_pipeline.json`` and
``BENCH_recovery.json``:

* ``detect_to_block_p50_ms`` / ``_p95_ms`` — sim-time from a flow's
  *first packet* on the wire to the moment a block/rate-limit action
  for it lands in the block table, computed purely from the input
  stream and the canonical action log.  (Verdict to block is zero by
  construction — the flow tier fires at the same cycle boundary that
  stores the verdict — so the first-packet-to-block span is the one
  that can regress: it absorbs the evaluation-window warm-up, the
  polling cadence and the rule thresholds.);
* ``enforcement_overhead_x`` — CPU time (``time.process_time``) of a
  full streaming run with the controller attached over the detect-only
  run.  Gated at :data:`MAX_ENFORCEMENT_OVERHEAD` (acceptance: within
  1.1x).  CPU time, not wall-clock: shared CI runners routinely skew
  wall-clock by 30-50% between back-to-back identical laps, which
  would drown the single-digit-percent signal the gate protects.

``PERF_PROFILE=quick`` shrinks the stream for CI.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import AutomatedDDoSDetector, pretrain
from repro.features import canonical_flow_key, extract_features
from repro.int_telemetry import REPORT_DTYPE
from repro.ml import GaussianNB, RandomForestClassifier
from repro.mitigation import MitigationController

PROFILE = os.environ.get("PERF_PROFILE", "full")
QUICK = PROFILE == "quick"

#: Production-representative mix: attack flows are a ~9% minority of
#: the stream (the steady state the overhead gate models — the 50/50
#: adversarial extreme is covered by the recovery/equivalence suites).
N_ATTACK_FLOWS = 40 if QUICK else 120
N_BENIGN_FLOWS = 10 * N_ATTACK_FLOWS
PKTS_PER_FLOW = 40
POLL_EVERY = 128
CYCLE_BUDGET = 256

BENCH_PATH = Path(__file__).parent / "BENCH_mitigation.json"
#: Acceptance gate: attaching the controller must not stretch the
#: streaming run beyond this factor of the detect-only wall-clock.
MAX_ENFORCEMENT_OVERHEAD = 1.1

#: name -> seconds (or ratio), filled by the tests, dumped at teardown.
TIMINGS = {}


@pytest.fixture(scope="module", autouse=True)
def mitigation_scoreboard():
    yield
    if not TIMINGS:
        return
    payload = {
        "profile": PROFILE,
        "flows": N_BENIGN_FLOWS + N_ATTACK_FLOWS,
        "pkts_per_flow": PKTS_PER_FLOW,
    }
    payload.update({k: round(v, 6) for k, v in sorted(TIMINGS.items())})
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {BENCH_PATH}")


def _flows(n_flows, attack, t0):
    """Per-flow packet trains: attack flows at ~670 pps with tiny
    payloads, benign flows trickle at ~500 pps with large ones.  The
    attack gap is sized so each flow spans many poll windows and needs
    more than one to clear the rule thresholds — a flow that fits
    inside one window would make the detect-to-block latency
    structurally zero and the metric meaningless."""
    out = []
    for f in range(n_flows):
        rec = np.zeros(PKTS_PER_FLOW, dtype=REPORT_DTYPE)
        gap = 1_500_000 if attack else 2_000_000
        start = t0 + f * 777_000
        ts = start + gap * np.arange(PKTS_PER_FLOW)
        rec["ts_report"] = ts
        rec["ingress_ts"] = ts % 2**32
        rec["egress_ts"] = ts % 2**32
        rec["src_ip"] = (0x01000000 if attack else 0xAC100000) + f
        rec["dst_ip"] = 0x0A0A0050
        rec["src_port"] = 1000 + f
        rec["dst_port"] = 80
        rec["protocol"] = 6
        rec["length"] = 64 if attack else 1200
        out.append(rec)
    return np.concatenate(out)


@pytest.fixture(scope="module")
def stream_and_bundle():
    # The attack arrives while benign traffic is still flowing, so poll
    # windows mix both classes — each attack flow then needs several
    # windows to clear the rule thresholds, which is what the latency
    # metric measures.
    benign = _flows(N_BENIGN_FLOWS, attack=False, t0=0)
    attack = _flows(N_ATTACK_FLOWS, attack=True, t0=10**8)
    records = np.concatenate([benign, attack])
    fm = extract_features(records, source="int")
    y = np.array([0] * len(benign) + [1] * len(attack))
    bundle = pretrain(
        fm.X, y, fm.names,
        panel={
            "rf": lambda: RandomForestClassifier(
                n_estimators=5, max_depth=8, seed=0
            ),
            "gnb": lambda: GaussianNB(),
        },
    )
    stream = records[np.argsort(records["ts_report"], kind="stable")]
    return stream, bundle


def _run(bundle, records, mitigate):
    det = AutomatedDDoSDetector(bundle, fast_poll=True, batched=True)
    ctrl = MitigationController().attach_to(det) if mitigate else None
    t0 = time.process_time()
    db = det.run_stream(records, poll_every=POLL_EVERY,
                        cycle_budget=CYCLE_BUDGET)
    return det, ctrl, db, time.process_time() - t0


def test_bench_detect_to_block_latency(stream_and_bundle):
    """Reaction time of the loop, in *simulation* time: a flow's first
    packet on the wire -> first mitigation action covering it.
    Verdict->block must stay zero (enforcement is inline at the cycle
    boundary that stores the verdict)."""
    stream, bundle = stream_and_bundle
    _, ctrl, db, _ = _run(bundle, stream, mitigate=True)

    first_packet = {}
    for row in stream:
        key = canonical_flow_key(
            int(row["src_ip"]), int(row["dst_ip"]),
            int(row["src_port"]), int(row["dst_port"]),
            int(row["protocol"]),
        )
        ts = int(row["ts_report"])
        if key not in first_packet or ts < first_packet[key]:
            first_packet[key] = ts
    first_flagged = {}
    for e in db.predictions:
        if e.final_decision == 1 and e.key not in first_flagged:
            first_flagged[e.key] = int(e.ts_registered_ns)

    lats_ms = []
    verdict_lats_ms = []
    seen = set()
    for a in ctrl.action_log:
        if a.tier != "flow" or a.verdict not in ("installed", "refreshed"):
            continue
        key = a.target[1:] if a.scope == "flow" else a.target
        if key in seen:
            continue
        seen.add(key)
        flow_key = tuple(a.target[1:6])
        arrived = first_packet.get(flow_key)
        if arrived is not None:
            lats_ms.append((a.ts_ns - arrived) / 1e6)
        flagged = first_flagged.get(flow_key)
        if flagged is not None:
            verdict_lats_ms.append((a.ts_ns - flagged) / 1e6)

    assert lats_ms, "no flow-tier actions fired on the attack stream"
    assert all(l >= 0 for l in lats_ms)
    # Inline enforcement adds no scheduling delay: any gap between the
    # first verdict and the block is rule-threshold warm-up (a few
    # packets), never more than one flow's own packet train.
    assert verdict_lats_ms and all(l >= 0 for l in verdict_lats_ms)
    train_ms = PKTS_PER_FLOW * 1_500_000 / 1e6
    assert max(verdict_lats_ms) <= train_ms
    p50 = float(np.percentile(lats_ms, 50))
    p95 = float(np.percentile(lats_ms, 95))
    TIMINGS["detect_to_block_p50_ms"] = p50
    TIMINGS["detect_to_block_p95_ms"] = p95
    TIMINGS["verdict_to_block_p95_ms"] = float(
        np.percentile(verdict_lats_ms, 95)
    )
    TIMINGS["flows_blocked"] = float(len(lats_ms))
    print(f"\ndetect->block latency over {len(lats_ms)} flows: "
          f"p50 {p50:.2f} ms, p95 {p95:.2f} ms (sim time)")


def test_bench_enforcement_overhead(stream_and_bundle):
    """The acceptance gate: the controller on the hot path must cost
    less than :data:`MAX_ENFORCEMENT_OVERHEAD` x detect-only."""
    stream, bundle = stream_and_bundle

    # Back-to-back (base, loop) pairs, best pair ratio wins.  CPU
    # frequency on shared runners drifts minute-to-minute (lap CPU time
    # for *identical* work swings >30%), but it is near-constant inside
    # one ~0.5 s pair — and noise can only inflate a pair's ratio, so
    # the minimum over pairs is the closest estimate of intrinsic cost
    # while still catching any real per-entry regression.
    best = None
    ctrl = None
    for _ in range(5):
        _, _, _, base_dt = _run(bundle, stream, mitigate=False)
        _, c, _, loop_dt = _run(bundle, stream, mitigate=True)
        ctrl = c
        if best is None or loop_dt / base_dt < best[2]:
            best = (base_dt, loop_dt, loop_dt / base_dt)
    base_s, loop_s, overhead = best

    assert ctrl.counters["rules_installed"] > 0, (
        "overhead lap did no mitigation work — nothing was measured"
    )
    TIMINGS["detect_only_s"] = base_s
    TIMINGS["closed_loop_s"] = loop_s
    TIMINGS["enforcement_overhead_x"] = overhead
    print(f"\nenforcement overhead: detect-only {base_s:.3f} s CPU, "
          f"closed loop {loop_s:.3f} s CPU ({overhead:.3f}x, "
          f"{ctrl.counters['rules_installed']} installs)")
    assert overhead <= MAX_ENFORCEMENT_OVERHEAD, (
        f"controller cost {overhead:.3f}x the detect-only run "
        f"(gate: {MAX_ENFORCEMENT_OVERHEAD}x)"
    )
