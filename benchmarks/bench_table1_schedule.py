"""Regenerates Table I: the attack-episode schedule."""

from repro.analysis.report import exp_table1
from repro.traffic import AttackType, table1_schedule


def test_table1_schedule(benchmark):
    out = benchmark(exp_table1)
    print("\n" + out)
    # paper shape: 11 episodes, the documented type mix, verbatim times
    eps = table1_schedule()
    assert len(eps) == 11
    assert sum(e.attack_type == AttackType.SYN_FLOOD for e in eps) == 5
    assert "13:24:02" in out and "20:31:12" in out
