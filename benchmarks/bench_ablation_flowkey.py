"""Ablation: bidirectional vs directional Flow ID (§III-2).

The paper defines the Flow ID as the literal five-tuple; the IDS
pipelines it builds on aggregate both directions into one flow (see
repro.features.keys).  This ablation extracts features both ways and
compares detection: direction-merging pairs probes with their responses
and requests with their data, enriching the flow state each update sees.
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.datasets import cached_dataset
from repro.features import extract_features
from repro.ml import (
    RandomForestClassifier,
    StandardScaler,
    classification_report,
    train_test_split,
)


def _score(fm, labels, seed=0):
    Xtr, Xte, ytr, yte = train_test_split(fm.X, labels, test_size=0.1, seed=seed)
    sc = StandardScaler().fit(Xtr)
    rf = RandomForestClassifier(n_estimators=20, max_depth=14,
                                max_samples=30000, seed=seed)
    rf.fit(sc.transform(Xtr), ytr)
    return classification_report(yte, rf.predict(sc.transform(Xte)))


def test_ablation_flow_key(benchmark, dataset):
    def run():
        bidi = extract_features(dataset.int_records, source="int",
                                directional=False)
        dire = extract_features(dataset.int_records, source="int",
                                directional=True)
        return (
            bidi.n_flows, dire.n_flows,
            _score(bidi, dataset.int_labels),
            _score(dire, dataset.int_labels),
        )

    n_bidi, n_dire, rep_bidi, rep_dire = benchmark(run)
    print("\n" + render_table(
        "Ablation: flow-key directionality",
        ("Key", "flows", "Accuracy", "Recall", "Precision"),
        [
            ("bidirectional (default)", n_bidi, rep_bidi["accuracy"],
             rep_bidi["recall"], rep_bidi["precision"]),
            ("directional five-tuple", n_dire, rep_dire["accuracy"],
             rep_dire["recall"], rep_dire["precision"]),
        ],
        note="directional keys split every conversation in two, so the "
        "flow count rises and each record carries less context",
    ))
    assert n_dire > n_bidi
    assert rep_bidi["accuracy"] > 0.99
