"""Ablation: sFlow packet-count vs time-based sampling (§II-A1, §V).

The paper describes both sFlow disciplines but deploys packet-count
sampling, and warns that sampling "could underperform if the attack
episode is shorter than the sampling rate".  This ablation replays the
campaign trace through three samplers:

* packet-count at the production-scaled 1:N rate,
* time-based at the *matched* average budget,
* time-based at a fine interval (one SlowLoris keepalive period).

Finding: at matched budget the discipline barely matters — both miss
SlowLoris because its episodes are shorter than the effective sampling
period.  Catching a low-and-slow attack with sampling requires paying
for a finer interval; only per-packet INT gets it for free.
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.sflow import PacketCountSampler, TimeBasedSampler
from repro.traffic import AttackType

TYPES = (AttackType.SYN_SCAN, AttackType.UDP_SCAN, AttackType.SYN_FLOOD,
         AttackType.SLOWLORIS)


def test_ablation_time_sampling(benchmark, dataset):
    rec = dataset.trace.records
    ts = rec["ts"]
    types = rec["attack_type"]
    rate = dataset.config.sflow_rate
    span = int(ts[-1] - ts[0])
    matched = max(1, span * rate // rec.shape[0])
    fine = dataset.config.slowloris_keepalive_ns

    def sweep():
        count_sampler = PacketCountSampler(rate, seed=3)
        picks = {
            "count": np.array([count_sampler.offer() for _ in range(rec.shape[0])]),
        }
        for name, interval in (("matched", matched), ("fine", fine)):
            sampler = TimeBasedSampler(interval)
            picks[name] = np.array([sampler.offer(int(t)) for t in ts])
        rows = []
        cov = {}
        for at in TYPES:
            mask = types == int(at)
            counts = {k: int((v & mask).sum()) for k, v in picks.items()}
            cov[at] = counts
            rows.append((at.display, counts["count"], counts["matched"],
                         counts["fine"]))
        totals = {k: int(v.sum()) for k, v in picks.items()}
        rows.append(("total budget", totals["count"], totals["matched"],
                     totals["fine"]))
        return cov, totals, render_table(
            "Ablation: sampling discipline vs episode coverage",
            ("Attack type", f"count 1:{rate}",
             f"time {matched / 1e6:.0f} ms (matched)",
             f"time {fine / 1e6:.0f} ms (fine)"),
            rows,
            note="episodes shorter than the sampling period are invisible "
            "regardless of discipline; fine intervals buy coverage with "
            "budget",
        )

    cov, totals, table = benchmark(sweep)
    print("\n" + table)

    # at matched budgets, SlowLoris is invisible either way (paper §V)
    assert cov[AttackType.SLOWLORIS]["count"] <= 1
    assert cov[AttackType.SLOWLORIS]["matched"] <= 1
    # a fine interval finally sees it — at a much larger budget
    assert cov[AttackType.SLOWLORIS]["fine"] >= 2
    assert totals["fine"] > 5 * totals["matched"]
    # count-based oversamples the flood relative to matched time-based
    assert cov[AttackType.SYN_FLOOD]["count"] > cov[AttackType.SYN_FLOOD]["matched"]
