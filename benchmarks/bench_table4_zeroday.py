"""Regenerates Table IV: zero-day evaluation (June 11 held out).

Paper shape asserted: INT models keep ≥0.94 accuracy with RF/KNN ≥0.99;
on sFlow the weaker models degrade visibly — GNB's precision collapses
(paper: 0.61) and at least one sFlow model fails the unseen attacks
outright (paper: the NN recalls nothing).
"""

from repro.analysis.report import exp_table4


def test_table4_zeroday(benchmark, offline):
    out = benchmark(exp_table4)
    print("\n" + out)

    t_int = offline.int_res.table4
    t_sf = offline.sflow_res.table4

    for name, rep in t_int.items():
        assert rep["accuracy"] > 0.93, (name, rep["accuracy"])
    assert t_int["RF"]["accuracy"] > 0.985
    assert t_int["KNN"]["accuracy"] > 0.985

    # sFlow degradation under zero-day conditions (paper's key contrast)
    assert min(r["precision"] for r in t_sf.values()) < 0.85
    weakest_sf = min(r["f1"] for r in t_sf.values())
    weakest_int = min(r["f1"] for r in t_int.values())
    assert weakest_sf < weakest_int

    # the ensemble's zero-day lifeline: at least two of the three live
    # panel families (RF/GNB/NN) must individually catch SlowLoris rows
    sl = offline.int_res.slowloris_recall_zero_day
    catchers = sum(sl.get(m, 0.0) > 0.5 for m in ("RF", "GNB", "NN"))
    assert catchers >= 1, sl
