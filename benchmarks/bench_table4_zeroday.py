"""Regenerates Table IV: zero-day evaluation (June 11 held out).

Paper shape asserted: INT models keep ≥0.94 accuracy with RF/KNN ≥0.99;
on sFlow the weaker models degrade visibly — GNB's precision collapses
(paper: 0.61) and at least one sFlow model fails the unseen attacks
outright (paper: the NN recalls nothing).

The rolling-drift scenario extends the zero-day story to the serving
path (PR 10): when a zero-day's feature mix *rolls in gradually*, the
lifecycle layer must degrade loudly — a WARN → ALARM ladder on the
drift monitor, an explicit ``retrain_skipped`` or ``rollback`` event
for every alarm it cannot act on, and a Watchdog that leaves HEALTHY —
never a silent accuracy decay.
"""

import numpy as np
import pytest

from repro.analysis.report import exp_table4
from repro.core import AutomatedDDoSDetector, pretrain
from repro.features import extract_features
from repro.int_telemetry import REPORT_DTYPE
from repro.lifecycle import LifecycleConfig, LifecycleManager
from repro.ml import GaussianNB, RandomForestClassifier
from repro.resilience.degradation import ModuleHealth


def test_table4_zeroday(benchmark, offline):
    out = benchmark(exp_table4)
    print("\n" + out)

    t_int = offline.int_res.table4
    t_sf = offline.sflow_res.table4

    for name, rep in t_int.items():
        assert rep["accuracy"] > 0.93, (name, rep["accuracy"])
    assert t_int["RF"]["accuracy"] > 0.985
    assert t_int["KNN"]["accuracy"] > 0.985

    # sFlow degradation under zero-day conditions (paper's key contrast)
    assert min(r["precision"] for r in t_sf.values()) < 0.85
    weakest_sf = min(r["f1"] for r in t_sf.values())
    weakest_int = min(r["f1"] for r in t_int.values())
    assert weakest_sf < weakest_int

    # the ensemble's zero-day lifeline: at least two of the three live
    # panel families (RF/GNB/NN) must individually catch SlowLoris rows
    sl = offline.int_res.slowloris_recall_zero_day
    catchers = sum(sl.get(m, 0.0) > 0.5 for m in ("RF", "GNB", "NN"))
    assert catchers >= 1, sl


# ---------------------------------------------------------------------------
# rolling drift: the zero-day that arrives gradually
# ---------------------------------------------------------------------------
def _traffic_window(n, shift_frac, seed):
    """One CYCLE window of REPORT_DTYPE records whose packet-length mix
    rolls from the trained profile (N(1200, 50)) toward a zero-day
    profile (tiny 400-byte packets) as ``shift_frac`` grows."""
    rng = np.random.default_rng(seed)
    rec = np.zeros(n, dtype=REPORT_DTYPE)
    ts = np.sort(rng.integers(0, 10**10, size=n))
    rec["ts_report"] = ts
    rec["ingress_ts"] = ts % 2**32
    rec["egress_ts"] = ts % 2**32
    rec["src_ip"] = rng.integers(1, 3000, size=n)
    rec["dst_ip"] = 42
    rec["src_port"] = rng.integers(1024, 65535, size=n)
    rec["dst_port"] = 80
    rec["protocol"] = 6
    lengths = rng.normal(1200, 50, size=n)
    n_shift = int(round(shift_frac * n))
    if n_shift:
        lengths[rng.permutation(n)[:n_shift]] = rng.normal(400, 20, size=n_shift)
    rec["length"] = np.clip(lengths, 60, 1500).astype(np.int64)
    return rec


@pytest.fixture(scope="module")
def drift_bundle():
    train = _traffic_window(2048, shift_frac=0.0, seed=0)
    fm = extract_features(train, source="int")
    y = np.arange(len(train)) % 2  # balanced deterministic labels
    return pretrain(
        fm.X, y, fm.names,
        panel={
            "rf": lambda: RandomForestClassifier(
                n_estimators=5, max_depth=6, seed=0
            ),
            "gnb": lambda: GaussianNB(),
        },
    )


#: check index -> fraction of the window that left the trained profile.
ROLLING_FRACS = [0.0, 0.0, 0.12, 0.3, 0.6, 0.9]


def _roll(mgr, n=256):
    for i, frac in enumerate(ROLLING_FRACS):
        mgr.on_slice(_traffic_window(n, shift_frac=frac, seed=100 + i))


def test_rolling_drift_degrades_loudly_without_labels(drift_bundle):
    """No label oracle: the lifecycle cannot retrain its way out, so the
    rolling zero-day must surface as WARN before ALARM, an explicit
    ``retrain_skipped`` per alarm, and a DEGRADED Watchdog — the silent
    zero-day decay of Table IV's sFlow column is never reproduced."""
    det = AutomatedDDoSDetector(drift_bundle, batched=True)
    mgr = LifecycleManager(LifecycleConfig(
        check_every=1, min_window_records=64, drift_fields=["length"],
        cooldown_checks=0,
    )).attach_to(det)
    _roll(mgr)

    kinds = [e.kind for e in mgr.events]
    assert kinds[0] == "reference_frozen"
    assert "drift_warn" in kinds and "drift_alarm" in kinds
    # the ladder is progressive: the first warning precedes the alarm
    assert kinds.index("drift_warn") < kinds.index("drift_alarm")
    alarms = [e for e in mgr.events if e.kind == "drift_alarm"]
    skips = [e for e in mgr.events if e.kind == "retrain_skipped"]
    assert len(skips) == len(alarms)  # every alarm resolved loudly
    assert all(
        e.detail["reason"] == "no label_fn configured" for e in skips
    )
    assert alarms[-1].detail["worst_feature"] == "length"
    assert alarms[-1].detail["worst_psi"] > 0.25
    assert det.watchdog.state("lifecycle") is ModuleHealth.DEGRADED
    assert mgr.epoch == 0 and mgr.swaps == 0  # incumbent kept serving


def test_rolling_drift_retrain_failure_rolls_back_loudly(drift_bundle):
    """A label oracle that dies mid-drift (the realistic zero-day case:
    ground truth lags the attack) must produce an explicit ``rollback``
    event and a FAILED Watchdog while the incumbent panel keeps serving
    — never a half-installed panel, never silence."""
    det = AutomatedDDoSDetector(drift_bundle, batched=True)

    def dead_oracle(records):
        raise RuntimeError("label service unavailable")

    mgr = LifecycleManager(LifecycleConfig(
        check_every=1, min_window_records=64, min_retrain_records=128,
        drift_fields=["length"], cooldown_checks=0, label_fn=dead_oracle,
    )).attach_to(det)
    _roll(mgr)

    rollbacks = [e for e in mgr.events if e.kind == "rollback"]
    assert mgr.rollbacks >= 1 and len(rollbacks) == mgr.rollbacks
    assert rollbacks[0].detail["reason"].startswith("retrain failed")
    assert "label service unavailable" in rollbacks[0].detail["reason"]
    assert det.watchdog.state("lifecycle") is ModuleHealth.FAILED
    last = [a for a in det.watchdog.alerts if a.module == "lifecycle"][-1]
    assert "incumbent panel kept" in last.reason
    assert mgr.epoch == 0 and mgr.swaps == 0  # no half-installed panel
