"""Regenerates Fig 5: true labels vs RF predictions on the timeline.

Paper shape asserted quantitatively:
 * INT predictions flag every attack episode (detection coverage);
 * sFlow records NOTHING during the SlowLoris episodes — the sampling
   blind spot that is the figure's headline.
"""

import numpy as np

from repro.analysis.report import exp_fig5
from repro.traffic import AttackType


def test_fig5_timeline(benchmark, offline):
    out = benchmark(exp_fig5)
    print("\n" + out)
    ds = offline.dataset

    # INT episode coverage: within every episode the RF must flag a
    # meaningful share of monitored packets.
    ts = offline.int_res.ts
    pred = offline.int_res.rf_full_predictions
    for atype, s, e in ds.schedule.sim_windows():
        mask = (ts >= s) & (ts < e)
        assert mask.any(), f"no INT records in {AttackType(atype).display} episode"
        assert pred[mask].mean() > 0.5, AttackType(atype).display

    # sFlow blindness to SlowLoris (the paper's missing-data finding).
    sf_ts = offline.sflow_res.ts
    for atype, s, e in ds.schedule.sim_windows():
        if atype == AttackType.SLOWLORIS:
            assert ((sf_ts >= s) & (sf_ts < e)).sum() == 0
    assert "sFlow samples inside the two SlowLoris episodes: 0" in out
