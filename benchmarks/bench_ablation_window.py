"""Ablation: the last-3 sliding decision window (§IV-C4).

Compares single-shot decisions (window=1) against the paper's last-3
majority and a wider last-5 on the live testbed replays.  The window
trades decision latency (more updates before a verdict) for stability;
the paper's choice of 3 should not *hurt* accuracy on any flow type.
"""

from repro.analysis import run_testbed_study
from repro.analysis.tables import render_table


def test_ablation_decision_window(benchmark):
    results = {}
    for window in (1, 3, 5):
        study = run_testbed_study("small", seed=0, decision_window=window)
        results[window] = study.table6

    def render():
        rows = []
        for name in ("SYN Scan", "UDP Scan", "SYN Flood", "SlowLoris", "Benign"):
            rows.append(
                (name, *(results[w].get(name, {}).get("accuracy", float("nan"))
                         for w in (1, 3, 5)))
            )
        return render_table(
            "Ablation: sliding decision window size",
            ("Flow type", "window=1", "window=3 (paper)", "window=5"),
            rows,
        )

    print("\n" + benchmark(render))

    # the paper's window must not lose accuracy on trained attacks
    for name in ("SYN Scan", "UDP Scan", "SYN Flood"):
        assert results[3][name]["accuracy"] >= results[1][name]["accuracy"] - 0.01
    # smoothing helps (or at least never hurts) the noisy zero-day type
    assert results[3]["SlowLoris"]["accuracy"] >= results[1]["SlowLoris"]["accuracy"] - 0.02
