"""Regenerates Table II: feature availability, INT vs sFlow."""

from repro.analysis.report import exp_table2
from repro.features import feature_names


def test_table2_features(benchmark):
    out = benchmark(exp_table2)
    print("\n" + out)
    # paper shape: INT's 15-feature set; sFlow lacks the queue metrics
    assert len(feature_names("int")) == 15
    assert len(feature_names("sflow")) == 12
    assert "queue_occupancy" in out
    for line in out.splitlines():
        if line.startswith("queue_occupancy "):
            assert "yes" in line and "no" in line
