"""Sketch-gated admission: memory scaling, throughput, and accuracy.

Quantifies what the :mod:`repro.sketch` front end buys at the ROADMAP's
millions-of-flows scale:

* **memory** — resident bytes of the exact ``FlowTable`` holding every
  five-tuple of a spoofed-source flood vs the sketch gate (constant-size
  counters + per-prefix residuals + the few promoted heavy hitters) at
  :data:`N_FLOWS` distinct flows, measured with ``tracemalloc``;
* **throughput** — batched ingest records/s for both paths over the
  same stream (untraced pass, so timing is not polluted by the
  allocation hooks);
* **accuracy** — flow-level detection metrics of the gated detector vs
  the exact path across a width × depth ablation grid, scored against
  ground truth with unpredicted flows defaulting to benign (the
  heavy-hitter contract: traffic the gate rejects is traffic the
  detector deliberately never predicts);
* **determinism** — the sketch-gated merged prediction-log digest must
  be byte-identical across shard counts {1, 2, 4}.

The scoreboard lands in ``benchmarks/BENCH_sketch.json``.  The
committed copy is the full-profile baseline; gates:

* memory ratio >= :data:`MIN_MEMORY_RATIO` (the tentpole's 5x floor),
  and no regression beyond :data:`REGRESSION_TOLERANCE` below the
  committed baseline ratio when profiles match;
* default-config gated detection metrics within
  :data:`MAX_ACCURACY_DROP` of the exact path;
* shard digests identical — unconditional, any host.

``PERF_PROFILE=quick`` shrinks the flood for CI (the 1M-flow memory
number in the committed file comes from a full run).
"""

import json
import os
import time
import tracemalloc
from pathlib import Path

import numpy as np
import pytest

from repro.core import AutomatedDDoSDetector, pretrain
from repro.core.sharding import prediction_log_digest
from repro.features import extract_features
from repro.features.batch import group_by_flow
from repro.features.flow_table import FlowTable
from repro.features.keys import canonical_key_arrays
from repro.int_telemetry import REPORT_DTYPE
from repro.ml import GaussianNB, RandomForestClassifier
from repro.sketch import SketchConfig

PROFILE = os.environ.get("PERF_PROFILE", "full")
QUICK = PROFILE == "quick"

#: Distinct flows in the spoofed-source flood (the memory story).
N_FLOWS = 150_000 if QUICK else 1_000_000
#: Ingest slice (records per batched fold).
SLICE = 8192

#: The tentpole's floor: gated resident memory must be at least this
#: many times smaller than the exact table at N_FLOWS distinct flows.
MIN_MEMORY_RATIO = 5.0
#: Allowed relative drop of the memory ratio vs the committed baseline.
REGRESSION_TOLERANCE = 0.20
#: Default-config gated detection metrics may trail the exact path by
#: at most this much (absolute).
MAX_ACCURACY_DROP = 0.02

#: The default gate recipe whose numbers the acceptance criteria cite.
DEFAULT_SKETCH = SketchConfig(width=1024, depth=4, partitions=64,
                              promote_packets=8)

#: Ablation grid (width, depth) — accuracy vs sketch memory.
ABLATION = [(256, 2), (256, 4), (1024, 2), (1024, 4), (4096, 4)]

BENCH_PATH = Path(__file__).parent / "BENCH_sketch.json"

#: Scoreboard, dumped at module teardown.
BOARD = {}


@pytest.fixture(scope="module", autouse=True)
def sketch_scoreboard():
    yield
    if not BOARD:
        return
    payload = {"profile": PROFILE, "n_flows": N_FLOWS}
    payload.update(BOARD)
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {BENCH_PATH}")


def _baseline():
    if not BENCH_PATH.exists():
        return None
    try:
        return json.loads(BENCH_PATH.read_text())
    except (ValueError, OSError):
        return None


# ---------------------------------------------------------------------------
# workloads
# ---------------------------------------------------------------------------
def flood_records(n_flows: int) -> np.ndarray:
    """One packet per distinct five-tuple: the pure spoofed-source SYN
    flood that makes the exact table the bottleneck.  Sources walk a
    10.0.0.0/8 pool and the victim IP is numerically larger, so the
    canonical endpoint A (which keys residual aggregation) is the
    spoofed source — several /16 residual prefixes, not one bucket."""
    i = np.arange(n_flows, dtype=np.int64)
    rec = np.zeros(n_flows, dtype=REPORT_DTYPE)
    ts = i * 1_000  # 1 us apart
    rec["ts_report"] = ts
    rec["ingress_ts"] = ts % 2**32
    rec["egress_ts"] = ts % 2**32
    rec["src_ip"] = (10 << 24) | (i & 0xFFFFFF)
    rec["src_port"] = 1024 + (i >> 24)
    rec["dst_ip"] = (203 << 24) | 1
    rec["dst_port"] = 80
    rec["protocol"] = 6
    rec["length"] = 64
    return rec


def mixed_stream(n_benign=300, n_attack=200, seed=0):
    """Labeled benign + flood mix for the accuracy ablation.

    Benign conversations to :443 — half heavy (12 pkts, promoted), half
    light (3 pkts, below threshold); attack flood flows to :80 — 12
    small packets each, so heavy hitters by construction.  Ground truth
    per canonical key: attack iff the flow touches port 80.
    """
    rng = np.random.default_rng(seed)
    rows = []
    for f in range(n_benign):
        pkts = 12 if f % 2 == 0 else 3
        for p in range(pkts):
            rows.append((f, 1 + f, 42, 20_000 + f, 443,
                         int(rng.integers(400, 1500)), p))
    for f in range(n_attack):
        for p in range(12):
            rows.append((n_benign + f, (172 << 24) | f, 42, 30_000 + f,
                         80, 64, p))
    rec = np.zeros(len(rows), dtype=REPORT_DTYPE)
    arr = np.array(rows, dtype=np.int64)
    # Arrival order: shuffle flows together, keep per-flow packet order
    # by sorting on (packet_index, shuffled flow rank).
    rank = rng.permutation(n_benign + n_attack)[arr[:, 0]]
    order = np.lexsort((rank, arr[:, 6]))
    arr = arr[order]
    ts = np.arange(arr.shape[0], dtype=np.int64) * 5_000
    rec["ts_report"] = ts
    rec["ingress_ts"] = ts % 2**32
    rec["egress_ts"] = ts % 2**32
    rec["src_ip"] = arr[:, 1]
    rec["dst_ip"] = arr[:, 2]
    rec["src_port"] = arr[:, 3]
    rec["dst_port"] = arr[:, 4]
    rec["protocol"] = 6
    rec["length"] = arr[:, 5]
    return rec


@pytest.fixture(scope="module")
def mixed():
    return mixed_stream()


@pytest.fixture(scope="module")
def bundle(mixed):
    fm = extract_features(mixed, source="int")
    y = (fm.X[:, fm.names.index("packet_size")] < 200).astype(int)
    return pretrain(
        fm.X, y, fm.names,
        panel={
            "rf": lambda: RandomForestClassifier(
                n_estimators=5, max_depth=8, seed=0
            ),
            "gnb": lambda: GaussianNB(),
        },
    )


# ---------------------------------------------------------------------------
# ingest drivers (table layer only — the memory/throughput story needs
# no ML, and the dirty-map/prediction machinery would blur the number)
# ---------------------------------------------------------------------------
def _ingest_exact(records, table):
    for start in range(0, records.shape[0], SLICE):
        chunk = records[start : start + SLICE]
        batch = group_by_flow(*canonical_key_arrays(chunk))
        table.update_batch(
            batch,
            chunk["ts_report"].astype(np.int64),
            chunk["ingress_ts"].astype(np.int64),
            chunk["length"].astype(np.float64),
            chunk["protocol"].astype(np.int64),
        )


def _ingest_gated(records, gate, table):
    for start in range(0, records.shape[0], SLICE):
        chunk = records[start : start + SLICE]
        batch = group_by_flow(*canonical_key_arrays(chunk))
        length = chunk["length"].astype(np.float64)
        len_sorted = length[batch.order]
        byts = np.add.reduceat(len_sorted, batch.starts).astype(np.int64)
        resident = np.fromiter(
            (k in table for k in batch.keys), dtype=bool, count=batch.n_groups
        )
        admit = gate.admit_slice(
            batch.key_hash, batch.counts, byts, resident, batch.group_ip_a
        )
        gate.end_window()
        if not admit.any():
            continue
        sub, rec_mask = batch.subset(admit)
        table.update_batch(
            sub,
            chunk["ts_report"].astype(np.int64)[rec_mask],
            chunk["ingress_ts"].astype(np.int64)[rec_mask],
            length[rec_mask],
            chunk["protocol"].astype(np.int64)[rec_mask],
        )


# ---------------------------------------------------------------------------
# memory + throughput at N_FLOWS distinct flows
# ---------------------------------------------------------------------------
def test_memory_and_throughput_at_scale():
    """The headline number: resident bytes per path at N_FLOWS distinct
    flows, plus batched ingest throughput on an untraced pass."""
    baseline = _baseline()
    records = flood_records(N_FLOWS)

    # --- traced passes: resident memory -----------------------------
    tracemalloc.start()
    exact_table = FlowTable()
    _ingest_exact(records, exact_table)
    exact_bytes, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    exact_flows = len(exact_table)
    del exact_table

    tracemalloc.start()
    gate = DEFAULT_SKETCH.build()
    gated_table = FlowTable()
    _ingest_gated(records, gate, gated_table)
    gated_bytes, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    gated_flows = len(gated_table)
    gate_stats = gate.stats()
    del gated_table

    assert exact_flows == N_FLOWS  # every spoofed source got a record
    # Single-packet flows never truly reach promote_packets=8, but at
    # full scale hash collisions inflate some estimates past the
    # threshold (count-min can only overcount) — false promotions cost
    # one FlowRecord each, never a missed heavy hitter.  Budget: <= 5%
    # of the flood may be falsely promoted; everything else lands in
    # the residuals.
    assert gated_flows <= N_FLOWS * 0.05, (
        f"{gated_flows:,} false promotions out of {N_FLOWS:,} "
        f"single-packet flows (> 5% budget)"
    )
    assert gate_stats["promotions"] == gated_flows
    assert gate_stats["residual_packets"] == N_FLOWS - gated_flows

    ratio = exact_bytes / gated_bytes
    print(
        f"\nmemory at {N_FLOWS:,} distinct flows: exact "
        f"{exact_bytes / 1e6:.1f} MB, gated {gated_bytes / 1e6:.1f} MB "
        f"({ratio:.1f}x reduction; sketch counters "
        f"{gate_stats['memory_bytes'] / 1e6:.1f} MB, "
        f"{gate_stats['residual_prefixes']} residual prefixes)"
    )

    # --- untraced passes: throughput ---------------------------------
    t0 = time.perf_counter()
    _ingest_exact(records, FlowTable())
    exact_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    _ingest_gated(records, DEFAULT_SKETCH.build(), FlowTable())
    gated_s = time.perf_counter() - t0
    exact_rate = N_FLOWS / exact_s
    gated_rate = N_FLOWS / gated_s
    print(
        f"ingest throughput: exact {exact_rate:,.0f} rec/s, "
        f"gated {gated_rate:,.0f} rec/s ({gated_rate / exact_rate:.1f}x)"
    )

    BOARD["memory"] = {
        "exact_bytes": exact_bytes,
        "gated_bytes": gated_bytes,
        "ratio": round(ratio, 2),
        "sketch_counter_bytes": gate_stats["memory_bytes"],
        "residual_prefixes": gate_stats["residual_prefixes"],
        "exact_resident_flows": exact_flows,
        "gated_resident_flows": gated_flows,
    }
    BOARD["throughput"] = {
        "exact_rate_per_s": round(exact_rate, 1),
        "gated_rate_per_s": round(gated_rate, 1),
        "gated_over_exact": round(gated_rate / exact_rate, 2),
    }

    assert ratio >= MIN_MEMORY_RATIO, (
        f"gated path only {ratio:.1f}x smaller than the exact table "
        f"(need {MIN_MEMORY_RATIO}x)"
    )
    # Under a pure flood the gated path must also not be slower: it
    # replaces 1M record creations with O(depth) counter scatters.
    assert gated_rate >= exact_rate, (
        f"gated ingest ({gated_rate:,.0f}/s) slower than exact "
        f"({exact_rate:,.0f}/s) on the flood workload"
    )
    if baseline is not None and baseline.get("profile") == PROFILE:
        base_ratio = baseline.get("memory", {}).get("ratio")
        if base_ratio:
            floor = base_ratio * (1.0 - REGRESSION_TOLERANCE)
            assert ratio >= floor, (
                f"memory ratio {ratio:.1f}x regressed below {floor:.1f}x "
                f"(baseline {base_ratio:.1f}x - {REGRESSION_TOLERANCE:.0%})"
            )


# ---------------------------------------------------------------------------
# accuracy vs memory ablation
# ---------------------------------------------------------------------------
def _flow_metrics(db, stream):
    """Flow-level detection metrics: unpredicted flows default to
    benign (the gate's contract), truth = flow touches port 80."""
    cols = canonical_key_arrays(stream)
    batch = group_by_flow(*cols)
    votes = {}
    for e in db.predictions:
        if e.final_decision is not None:
            votes.setdefault(e.key, []).append(e.final_decision)
    correct = attacks = caught = 0
    for key in batch.keys:
        true = int(80 in (key[2], key[3]))
        v = votes.get(key)
        pred = int(sum(v) * 2 >= len(v)) if v else 0
        correct += int(pred == true)
        attacks += true
        caught += int(true and pred)
    n = batch.n_groups
    return {
        "flows": n,
        "accuracy": round(correct / n, 4),
        "attack_recall": round(caught / attacks, 4) if attacks else 1.0,
    }


def test_accuracy_vs_memory_ablation(mixed, bundle):
    """Detection quality of the gated detector across the sketch grid,
    vs the exact path on the identical stream."""

    def run(sketch=None):
        det = AutomatedDDoSDetector(
            bundle, batched=True, fast_poll=True, sketch=sketch
        )
        db = det.run_stream(mixed, poll_every=128, cycle_budget=512)
        return det, db

    _, db_exact = run()
    exact = _flow_metrics(db_exact, mixed)
    print(f"\nexact path: {exact}")

    grid = {}
    for width, depth in ABLATION:
        cfg = SketchConfig(
            width=width, depth=depth, partitions=64, promote_packets=8
        )
        det, db = run(cfg)
        m = _flow_metrics(db, mixed)
        sk = det.stats()["sketch"]
        m["sketch_bytes"] = sk["memory_bytes"]
        m["promotions"] = sk["promotions"]
        m["rejected_packets"] = sk["rejected_packets"]
        grid[f"w{width}_d{depth}"] = m
        print(f"w={width} d={depth}: {m}")

    BOARD["accuracy"] = {"exact": exact, "ablation": grid}

    default_key = f"w{DEFAULT_SKETCH.width}_d{DEFAULT_SKETCH.depth}"
    got = grid[default_key]
    for metric in ("accuracy", "attack_recall"):
        assert got[metric] >= exact[metric] - MAX_ACCURACY_DROP, (
            f"default sketch {default_key} {metric} {got[metric]:.4f} "
            f"more than {MAX_ACCURACY_DROP:.0%} below exact "
            f"{exact[metric]:.4f}"
        )
    # The ablation must show the memory knob actually moving.
    sizes = {g["sketch_bytes"] for g in grid.values()}
    assert len(sizes) >= 3


# ---------------------------------------------------------------------------
# shard-digest determinism gate
# ---------------------------------------------------------------------------
def test_gated_digest_identical_across_shards(mixed, bundle):
    """CI gate: the sketch-gated merged prediction log is byte-identical
    for shard counts {1, 2, 4} — unconditional on any host (workers are
    processes; a 1-core runner only slows them down)."""

    def run(shards=None):
        det = AutomatedDDoSDetector(
            bundle, batched=True, fast_poll=True, sketch=DEFAULT_SKETCH
        )
        db = det.run_stream(
            mixed, poll_every=128, cycle_budget=512, shards=shards
        )
        return db

    ref = prediction_log_digest(run())
    for n in (1, 2, 4):
        assert prediction_log_digest(run(shards=n)) == ref, (
            f"gated digest diverged at {n} shards"
        )
    BOARD["gated_digest_shards_1_2_4"] = "identical"
