"""Recovery-cost benchmarks for the supervised sharded runtime (PR 5).

Fault tolerance is only usable if recovery is cheap: a murdered worker
must come back (checkpoint restore + replay-buffer drain) without
stretching the run materially.  This module measures that cost and is
part of the perf-trajectory harness: the scoreboard is written to
``benchmarks/BENCH_recovery.json`` at teardown so the trajectory of
restore latency and recovery overhead is tracked alongside
``BENCH_pipeline.json``.

Reported numbers:

* ``restore_latency_s`` — supervisor-measured time from death detection
  to the respawned worker having its replay suffix queued;
* ``checkpoint_pack_s`` / ``checkpoint_restore_s`` — snapshot/restore of
  a loaded detector in isolation (the worker-side cost paid every
  ``checkpoint_every`` cycles);
* ``recovery_overhead_x`` — wall-clock of a run with one mid-stream
  SIGKILL over the clean sharded run.  Gated at
  :data:`MAX_RECOVERY_OVERHEAD` (acceptance: within 2x), with the
  merged-digest identity asserted on every run.

``PERF_PROFILE=quick`` shrinks the stream for CI.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import AutomatedDDoSDetector, pretrain
from repro.core.checkpoint import restore_detector, snapshot_detector
from repro.core.sharding import prediction_log_digest
from repro.features import extract_features
from repro.int_telemetry import REPORT_DTYPE
from repro.ml import GaussianNB, RandomForestClassifier
from repro.resilience.process_chaos import ProcessChaos

PROFILE = os.environ.get("PERF_PROFILE", "full")
QUICK = PROFILE == "quick"

N_RECORDS = 20_000 if QUICK else 60_000
POLL_EVERY = 128
CYCLE_BUDGET = 256
N_SHARDS = 2
CHECKPOINT_EVERY = 8

BENCH_PATH = Path(__file__).parent / "BENCH_recovery.json"
#: Acceptance gate: a one-kill recovery run must finish within this
#: factor of the clean sharded wall-clock.
MAX_RECOVERY_OVERHEAD = 2.0

#: name -> seconds (or ratio), filled by the tests, dumped at teardown.
TIMINGS = {}


@pytest.fixture(scope="module", autouse=True)
def recovery_scoreboard():
    yield
    if not TIMINGS:
        return
    payload = {
        "profile": PROFILE,
        "records": N_RECORDS,
        "shards": N_SHARDS,
        "checkpoint_every": CHECKPOINT_EVERY,
    }
    payload.update({k: round(v, 6) for k, v in sorted(TIMINGS.items())})
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {BENCH_PATH}")


@pytest.fixture(scope="module")
def synth_records():
    rng = np.random.default_rng(0)
    n = N_RECORDS
    rec = np.zeros(n, dtype=REPORT_DTYPE)
    ts = np.sort(rng.integers(0, 10**10, size=n))
    rec["ts_report"] = ts
    rec["ingress_ts"] = ts % 2**32
    rec["egress_ts"] = ts % 2**32
    rec["src_ip"] = rng.integers(1, 5000, size=n)
    rec["dst_ip"] = 42
    rec["src_port"] = rng.integers(1024, 65535, size=n)
    rec["dst_port"] = 80
    rec["protocol"] = 6
    rec["length"] = rng.integers(40, 1500, size=n)
    return rec


@pytest.fixture(scope="module")
def detector_bundle(synth_records):
    fm = extract_features(synth_records, source="int")
    y = (fm.X[:, fm.names.index("packet_size")] < 200).astype(int)
    return pretrain(
        fm.X, y, fm.names,
        panel={
            "rf": lambda: RandomForestClassifier(
                n_estimators=5, max_depth=8, seed=0
            ),
            "gnb": lambda: GaussianNB(),
        },
    )


def _run(bundle, records, **kw):
    det = AutomatedDDoSDetector(bundle, fast_poll=True, batched=True)
    t0 = time.perf_counter()
    db = det.run_stream(
        records, poll_every=POLL_EVERY, cycle_budget=CYCLE_BUDGET, **kw
    )
    return det, db, time.perf_counter() - t0


def test_bench_checkpoint_pack_restore(synth_records, detector_bundle):
    """Worker-side checkpoint cost: snapshot + restore of a detector
    loaded with the full stream's flow state."""
    det = AutomatedDDoSDetector(detector_bundle, fast_poll=True, batched=True)
    det.run_stream(synth_records, poll_every=POLL_EVERY,
                   cycle_budget=CYCLE_BUDGET)

    t0 = time.perf_counter()
    blob = snapshot_detector(det, cycles_done=7, last_seq=N_RECORDS - 1)
    pack_s = time.perf_counter() - t0

    fresh = AutomatedDDoSDetector(detector_bundle, fast_poll=True, batched=True)
    t0 = time.perf_counter()
    payload = restore_detector(fresh, blob)
    restore_s = time.perf_counter() - t0

    assert payload["cycles_done"] == 7
    assert len(fresh.db.predictions) == len(det.db.predictions)
    TIMINGS["checkpoint_pack_s"] = pack_s
    TIMINGS["checkpoint_restore_s"] = restore_s
    TIMINGS["checkpoint_bytes"] = float(len(blob))
    print(
        f"\ncheckpoint: pack {pack_s * 1e3:.1f} ms, restore "
        f"{restore_s * 1e3:.1f} ms, {len(blob) / 1e6:.2f} MB "
        f"({N_RECORDS} records of flow state)"
    )


def test_bench_recovery_overhead(synth_records, detector_bundle):
    """The acceptance gate: one mid-stream SIGKILL must cost less than
    :data:`MAX_RECOVERY_OVERHEAD` x the clean sharded wall-clock, and
    the recovered digest must equal the unfaulted single-process run."""
    _, db_ref, _ = _run(detector_bundle, synth_records)
    ref_digest = prediction_log_digest(db_ref)

    # best-of-2 clean laps (shared runners are noisy)
    clean_s = None
    for _ in range(2):
        _, db_clean, dt = _run(
            detector_bundle, synth_records, shards=N_SHARDS,
            checkpoint_every=CHECKPOINT_EVERY,
        )
        clean_s = dt if clean_s is None else min(clean_s, dt)
    assert prediction_log_digest(db_clean) == ref_digest

    n_cycles = N_RECORDS // POLL_EVERY
    plan = ProcessChaos.seeded(
        seed=1, n_cycles=max(1, n_cycles - 1), n_shards=N_SHARDS
    )
    det, db_kill, kill_s = _run(
        detector_bundle, synth_records, shards=N_SHARDS,
        checkpoint_every=CHECKPOINT_EVERY, process_chaos=plan,
    )
    assert prediction_log_digest(db_kill) == ref_digest
    sup = det.supervision_stats
    assert sup["workers_respawned"] >= 1 and sup["lossy_recoveries"] == 0

    restore_s = max(sup["restore_latencies_s"])
    overhead = kill_s / clean_s
    TIMINGS["clean_sharded_s"] = clean_s
    TIMINGS["recovery_run_s"] = kill_s
    TIMINGS["restore_latency_s"] = restore_s
    TIMINGS["recovery_overhead_x"] = overhead
    print(
        f"\nrecovery ({plan.describe()}): clean {clean_s:.2f} s, with kill "
        f"{kill_s:.2f} s ({overhead:.2f}x), restore latency "
        f"{restore_s * 1e3:.0f} ms"
    )
    assert overhead <= MAX_RECOVERY_OVERHEAD, (
        f"recovery run took {overhead:.2f}x the clean sharded wall-clock "
        f"(gate: {MAX_RECOVERY_OVERHEAD}x)"
    )
