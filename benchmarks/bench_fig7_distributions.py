"""Regenerates Fig 7: where live misclassifications cluster.

Paper shape asserted: SlowLoris errors happen "exclusively at the
beginning of flows" — the first quarter of the replay holds the large
majority of its misclassifications; benign errors are rare.
"""

import numpy as np

from repro.analysis.report import exp_fig7


def test_fig7_distributions(benchmark, testbed):
    out = benchmark(exp_fig7)
    print("\n" + out)

    sl = testbed.decisions["SlowLoris"]
    wrong = np.flatnonzero(sl != testbed.true_labels["SlowLoris"])
    assert wrong.size > 0  # zero-day: some early errors must exist
    # concentration at the start (paper Fig 7b)
    first_quarter = (wrong < sl.size / 4).mean()
    assert first_quarter > 0.8, f"only {first_quarter:.0%} of errors early"

    ben = testbed.decisions["Benign"]
    ben_err = (ben != testbed.true_labels["Benign"]).mean()
    assert ben_err < 0.06  # paper: 5.8% benign error
