"""Regenerates Fig 2: the four-module mechanism data flow."""

from repro.analysis.report import exp_fig2


def test_fig2_architecture(benchmark, testbed):
    out = benchmark(exp_fig2)
    print("\n" + out)
    # the eight numbered steps of the paper's figure, in order
    for step in range(1, 9):
        assert f"({step})" in out
    assert "'mlp'" in out and "'rf'" in out and "'gnb'" in out
