"""Ablation: detection robustness under INT report loss.

Telemetry reports ride UDP to the collector; under the very congestion
an attack causes, some reports will be dropped.  This ablation thins the
INT capture with the :class:`~repro.resilience.chaos.FaultInjector` —
the codebase's single loss model, shared with the online chaos harness —
at increasing loss rates, re-extracts features (each flow simply sees a
subsample of its packets), and re-trains/tests — quantifying how much
headroom the detector has before telemetry loss becomes a problem for a
production rollout (§V).
"""

from repro.analysis.tables import render_table
from repro.features import extract_features
from repro.ml import (
    RandomForestClassifier,
    StandardScaler,
    classification_report,
    train_test_split,
)
from repro.resilience import ChaosSchedule, FaultInjector

LOSS_RATES = (0.0, 0.1, 0.3, 0.5)


def test_ablation_telemetry_loss(benchmark, dataset):
    def sweep():
        rows = []
        accs = {}
        for loss in LOSS_RATES:
            injector = FaultInjector(ChaosSchedule(drop_rate=loss), seed=7)
            rec, kept_idx = injector.apply(dataset.int_records)
            labels = dataset.int_labels[kept_idx]
            assert injector.stats.dropped == (
                dataset.int_records.shape[0] - rec.shape[0]
            )
            fm = extract_features(rec, source="int")
            Xtr, Xte, ytr, yte = train_test_split(
                fm.X, labels, test_size=0.1, seed=0
            )
            sc = StandardScaler().fit(Xtr)
            rf = RandomForestClassifier(n_estimators=15, max_depth=12,
                                        max_samples=30000, seed=0)
            rf.fit(sc.transform(Xtr), ytr)
            rep = classification_report(yte, rf.predict(sc.transform(Xte)))
            accs[loss] = rep["accuracy"]
            rows.append((f"{loss:.0%}", rec.shape[0], rep["accuracy"],
                         rep["recall"], rep["precision"]))
        return accs, render_table(
            "Ablation: INT report loss vs detection quality",
            ("Report loss", "reports", "Accuracy", "Recall", "Precision"),
            rows,
            note="uniform loss thins every flow's sample; flow-level "
            "features degrade gracefully because they are ratios and "
            "running statistics, not absolute counts",
        )

    accs, table = benchmark(sweep)
    print("\n" + table)

    assert accs[0.0] > 0.99
    # graceful degradation: even half the telemetry missing keeps the
    # detector comfortably above 0.97
    assert accs[0.5] > 0.97
    # and quality decays monotonically-ish (no cliff)
    assert accs[0.5] >= accs[0.0] - 0.03