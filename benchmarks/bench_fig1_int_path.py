"""Regenerates Fig 1: the INT source/transit/sink collection path."""

from repro.analysis.report import exp_fig1


def test_fig1_int_path(benchmark):
    out = benchmark(exp_fig1)
    print("\n" + out)
    # one metadata record per hop, in path order, ending at the collector
    assert out.index("switch 1:") < out.index("switch 2:") < out.index("switch 3:")
    assert "sink report -> collector" in out
    assert "hops=3" in out
