"""Regenerates Fig 6: the physical testbed topology."""

from repro.analysis.report import exp_fig6


def test_fig6_testbed(benchmark):
    out = benchmark(exp_fig6)
    print("\n" + out)
    for port in ("port 1", "port 2", "port 3", "port 4", "port 5"):
        assert port in out
    assert "source_agent" in out and "target_agent" in out
    assert "collector" in out
