"""Regenerates Fig 4: RF confusion matrix on sFlow data.

Paper shape: near-perfect on sampled data, with at most a handful of
errors (paper: 4 attack packets misclassified, no benign errors).
"""

import numpy as np

from repro.analysis.report import exp_fig4


def test_fig4_confusion_sflow(benchmark, offline):
    out = benchmark(exp_fig4)
    print("\n" + out)
    cm = offline.sflow_res.cm_rf_split
    total = cm.sum()
    # the sampled test set is small; errors must stay a small handful
    errors = total - np.trace(cm)
    assert errors <= max(4, 0.1 * total)
    assert cm[1, 1] > 0
