"""Shared fixtures for the benchmark harness.

The expensive artifacts (campaign dataset, offline study, testbed study)
are process-cached inside :mod:`repro.analysis.experiments`, so every
bench file can ask for them without paying the build more than once per
pytest session.  Run with ``pytest benchmarks/ --benchmark-only -s`` to
see the regenerated tables and figures.
"""

import pytest

from repro.analysis import run_offline_study, run_testbed_study
from repro.datasets import cached_dataset

PROFILE = "small"


@pytest.fixture(scope="session")
def dataset():
    return cached_dataset(PROFILE)


@pytest.fixture(scope="session")
def offline():
    return run_offline_study(PROFILE, seed=0)


@pytest.fixture(scope="session")
def testbed():
    return run_testbed_study(PROFILE, seed=0)
