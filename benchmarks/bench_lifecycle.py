"""Lifecycle-cost benchmarks for the online model lifecycle (PR 10).

Drift monitoring and hot model swap are only deployable if they are
cheap: the per-window PSI check rides the serving path of every CYCLE
slice, and the swap itself (retrain + holdout gate + pack + install)
stalls the coordinator for one barrier.  This module measures both and
is part of the perf-trajectory harness: the scoreboard is written to
``benchmarks/BENCH_lifecycle.json`` at teardown, alongside
``BENCH_recovery.json`` and ``BENCH_pipeline.json``.

Reported numbers:

* ``drift_check_s`` — median latency of an ``on_slice`` call that runs
  the PSI ladder but does not retrain (the steady-state per-check cost);
* ``swap_latency_s`` — latency of the single ``on_slice`` call that
  retrains on the reservoir, passes the holdout gate, packs the panel
  blob and installs it into the serving module (detect-to-install);
* ``lifecycle_overhead_x`` — wall-clock of a full run with a lifecycle
  attached as a never-swapping observer over the bare run.  Gated at
  :data:`MAX_LIFECYCLE_OVERHEAD` (acceptance: within 1.1x), with the
  observer digest asserted byte-identical to the bare digest.

``PERF_PROFILE=quick`` shrinks the stream for CI.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import AutomatedDDoSDetector, pretrain
from repro.core.sharding import prediction_log_digest
from repro.features import extract_features
from repro.int_telemetry import REPORT_DTYPE
from repro.lifecycle import LifecycleConfig, LifecycleManager
from repro.ml import GaussianNB, RandomForestClassifier
from repro.resilience.harness import _parity_labels

PROFILE = os.environ.get("PERF_PROFILE", "full")
QUICK = PROFILE == "quick"

N_RECORDS = 20_000 if QUICK else 60_000
POLL_EVERY = 128
CYCLE_BUDGET = 256

BENCH_PATH = Path(__file__).parent / "BENCH_lifecycle.json"
#: Acceptance gate: a never-swapping lifecycle observer must keep the
#: full run within this factor of the bare wall-clock.
MAX_LIFECYCLE_OVERHEAD = 1.1

#: name -> seconds (or ratio), filled by the tests, dumped at teardown.
TIMINGS = {}


@pytest.fixture(scope="module", autouse=True)
def lifecycle_scoreboard():
    yield
    if not TIMINGS:
        return
    payload = {
        "profile": PROFILE,
        "records": N_RECORDS,
        "poll_every": POLL_EVERY,
    }
    payload.update({k: round(v, 6) for k, v in sorted(TIMINGS.items())})
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {BENCH_PATH}")


@pytest.fixture(scope="module")
def synth_records():
    rng = np.random.default_rng(0)
    n = N_RECORDS
    rec = np.zeros(n, dtype=REPORT_DTYPE)
    ts = np.sort(rng.integers(0, 10**10, size=n))
    rec["ts_report"] = ts
    rec["ingress_ts"] = ts % 2**32
    rec["egress_ts"] = ts % 2**32
    rec["src_ip"] = rng.integers(1, 5000, size=n)
    rec["dst_ip"] = 42
    rec["src_port"] = rng.integers(1024, 65535, size=n)
    rec["dst_port"] = 80
    rec["protocol"] = 6
    rec["length"] = rng.integers(40, 1500, size=n)
    return rec


@pytest.fixture(scope="module")
def detector_bundle(synth_records):
    fm = extract_features(synth_records, source="int")
    y = (fm.X[:, fm.names.index("packet_size")] < 200).astype(int)
    return pretrain(
        fm.X, y, fm.names,
        panel={
            "rf": lambda: RandomForestClassifier(
                n_estimators=5, max_depth=8, seed=0
            ),
            "gnb": lambda: GaussianNB(),
        },
    )


def _lifecycle(force_at=None):
    return LifecycleManager(LifecycleConfig(
        check_every=2,
        min_window_records=64,
        min_retrain_records=128,
        reservoir_windows=8,
        holdout_every=4,
        cooldown_checks=2,
        regression_tolerance=1.0,
        retrain_seed=0,
        label_fn=_parity_labels,
        force_swap_at_check=force_at,
    ))


def _run(bundle, records, lifecycle=False):
    det = AutomatedDDoSDetector(bundle, fast_poll=True, batched=True)
    mgr = _lifecycle().attach_to(det) if lifecycle else None
    t0 = time.perf_counter()
    db = det.run_stream(
        records, poll_every=POLL_EVERY, cycle_budget=CYCLE_BUDGET
    )
    return mgr, db, time.perf_counter() - t0


def test_bench_drift_check_and_swap_latency(synth_records, detector_bundle):
    """Per-check PSI cost and detect-to-install swap latency, measured
    by driving ``on_slice`` directly with the stream's CYCLE slices."""
    det = AutomatedDDoSDetector(detector_bundle, fast_poll=True, batched=True)
    mgr = _lifecycle(force_at=4).attach_to(det)

    check_laps = []
    swap_lap = None
    for start in range(0, len(synth_records), POLL_EVERY):
        window = synth_records[start:start + POLL_EVERY]
        before = mgr.checks_done
        t0 = time.perf_counter()
        cmd = mgr.on_slice(window)
        lap = time.perf_counter() - t0
        if cmd is not None:
            swap_lap = lap
            break
        if mgr.checks_done > before:
            check_laps.append(lap)

    assert swap_lap is not None, "forced swap never fired"
    assert mgr.swaps == 1 and mgr.epoch == 1
    drift_check_s = float(np.median(check_laps))
    TIMINGS["drift_check_s"] = drift_check_s
    TIMINGS["swap_latency_s"] = swap_lap
    print(
        f"\nlifecycle: drift check {drift_check_s * 1e3:.2f} ms (median of "
        f"{len(check_laps)}), swap latency {swap_lap * 1e3:.1f} ms "
        f"(retrain + holdout + pack + install)"
    )


def test_bench_lifecycle_overhead(synth_records, detector_bundle):
    """The acceptance gate: a lifecycle attached as a never-swapping
    observer must cost less than :data:`MAX_LIFECYCLE_OVERHEAD` x the
    bare run, and its digest must stay byte-identical (zero-cost
    observer invariant, measured rather than assumed)."""
    _run(detector_bundle, synth_records)  # untimed warmup lap
    bare_s = obs_s = None
    for _ in range(5):  # best-of-5, alternating: shared runners are noisy
        _, db_bare, dt_bare = _run(detector_bundle, synth_records)
        mgr, db_obs, dt_obs = _run(
            detector_bundle, synth_records, lifecycle=True
        )
        bare_s = dt_bare if bare_s is None else min(bare_s, dt_bare)
        obs_s = dt_obs if obs_s is None else min(obs_s, dt_obs)
    assert mgr is not None and mgr.swaps == 0
    assert mgr.checks_done >= 1  # the monitor really ran
    assert prediction_log_digest(db_obs) == prediction_log_digest(db_bare)

    overhead = obs_s / bare_s
    TIMINGS["bare_run_s"] = bare_s
    TIMINGS["observer_run_s"] = obs_s
    TIMINGS["lifecycle_overhead_x"] = overhead
    print(
        f"\nlifecycle overhead: bare {bare_s:.2f} s, observer {obs_s:.2f} s "
        f"({overhead:.2f}x, gate {MAX_LIFECYCLE_OVERHEAD}x)"
    )
    assert overhead <= MAX_LIFECYCLE_OVERHEAD, (
        f"lifecycle observer run took {overhead:.2f}x the bare wall-clock "
        f"(gate: {MAX_LIFECYCLE_OVERHEAD}x)"
    )
