"""Baseline comparison: entropy anomaly detection vs the paper's ML.

Runs the classic training-free entropy detector over the full campaign
trace and scores its episode coverage against the ML pipeline's
(Fig 5-style).  Expected shape: entropy catches the volumetric episodes
(floods, and the scans via destination-port entropy) without any
training, but is structurally blind to SlowLoris — the attack class that
motivates flow-state + learning on top of per-packet telemetry.
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.baselines import EntropyDetector
from repro.traffic import AttackType


def test_baseline_entropy_coverage(benchmark, dataset, offline):
    det = EntropyDetector(window_ns=100_000_000, z_threshold=4.0)

    def run():
        res = det.detect(dataset.trace.records)
        windows = [(s, e) for _t, s, e in dataset.schedule.sim_windows()]
        covered = det.episode_coverage(res, windows)
        return res, covered

    res, covered = benchmark(run)

    # ML (RF on INT) episode coverage from the offline study
    ts = offline.int_res.ts
    pred = offline.int_res.rf_full_predictions
    rows = []
    per_type = {}
    for (atype, s, e), hit in zip(dataset.schedule.sim_windows(), covered):
        mask = (ts >= s) & (ts < e)
        ml_hit = bool(pred[mask].mean() > 0.5) if mask.any() else False
        name = AttackType(atype).display
        per_type.setdefault(name, []).append((hit, ml_hit))
        rows.append((name, f"{s / 1e9:.1f}s",
                     "yes" if hit else "NO", "yes" if ml_hit else "NO"))
    # benign false-alarm rate outside all episodes
    starts = res["window_starts"]
    outside = np.ones(starts.size, dtype=bool)
    for _t, s, e in dataset.schedule.sim_windows():
        outside &= ~((starts >= s - det.window_ns) & (starts < e))
    far = float(res["alarms"][outside & (res["counts"] >= det.min_packets)].mean())
    rows.append(("benign FAR", "-", f"{far:.2%}", "-"))

    print("\n" + render_table(
        "Baseline: entropy anomaly detector vs ML (episode coverage)",
        ("Episode", "start", "entropy detector", "RF on INT"),
        rows,
        note="entropy needs no training but misses single-source scans "
        "(normalized entropies barely move) and is structurally blind to "
        "low-and-slow attacks; the ML detector covers everything",
    ))

    # volumetric episodes covered without any training
    assert all(h for h, _ in per_type["SYN Flood"])
    # structural blind spots of the distribution view: single-source
    # scans barely move *normalized* entropies, and low-and-slow
    # SlowLoris moves nothing — both need the flow-state ML detector
    assert not any(h for h, _ in per_type["SlowLoris"])
    assert all(ml for _, ml in per_type["SlowLoris"])
    assert all(ml for _, ml in per_type["SYN Scan"])
    assert far < 0.15
