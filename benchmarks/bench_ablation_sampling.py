"""Ablation: sFlow sampling-rate sweep vs attack visibility (§IV-B4, §V).

Sweeps the packet-count sampling rate from 1:64 to 1:4096 over the
campaign trace and counts, per attack type, how many samples land inside
attack episodes.  This quantifies the paper's core sFlow caveat: "sFlow
could underperform if the attack episode is shorter than the sampling
rate" — floods stay visible at every rate while SlowLoris vanishes
beyond ~1:512.
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.datasets import cached_dataset
from repro.sflow import PacketCountSampler
from repro.traffic import AttackType

RATES = (64, 256, 512, 1024, 4096)


def test_ablation_sampling_rate(benchmark, dataset):
    rec = dataset.trace.records
    types = rec["attack_type"]

    def sweep():
        rows = []
        per_rate = {}
        for rate in RATES:
            sampler = PacketCountSampler(rate, seed=1)
            picks = np.array([sampler.offer() for _ in range(rec.shape[0])])
            counts = {}
            for at in (AttackType.SYN_SCAN, AttackType.UDP_SCAN,
                       AttackType.SYN_FLOOD, AttackType.SLOWLORIS):
                counts[at.display] = int((picks & (types == int(at))).sum())
            per_rate[rate] = counts
            rows.append((f"1:{rate}", *(counts[at.display] for at in (
                AttackType.SYN_SCAN, AttackType.UDP_SCAN,
                AttackType.SYN_FLOOD, AttackType.SLOWLORIS))))
        return per_rate, render_table(
            "Ablation: sFlow sampling rate vs attack-episode sample counts",
            ("Rate", "SYN Scan", "UDP Scan", "SYN Flood", "SlowLoris"),
            rows,
            note="a detector cannot flag an episode it drew zero samples from",
        )

    per_rate, table = benchmark(sweep)
    print("\n" + table)

    # floods stay visible at the production rate; SlowLoris does not
    assert per_rate[4096]["SYN Flood"] >= 1
    assert per_rate[4096]["SlowLoris"] == 0
    assert per_rate[64]["SlowLoris"] >= 1  # dense sampling would see it
    # monotone: coarser sampling never yields more flood samples
    floods = [per_rate[r]["SYN Flood"] for r in RATES]
    assert all(a >= b for a, b in zip(floods, floods[1:]))
