"""Ablation: probabilistic INT (PINT [30]) — accuracy vs overhead.

The paper's §V/future-work question: how much telemetry volume can be
shed before detection quality degrades?  We rebuild the monitored path
with temporal INT sampling at several packet fractions, replay a
benign+flood+slowloris mix, and measure RF detection accuracy against
the per-packet wire overhead.

Expected shape: accuracy degrades gracefully down to ~10% sampling
(flows still accumulate state from their sampled packets) while the
overhead drops linearly — the trade PINT exploits.
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.datasets import SERVER_IP, CampaignConfig
from repro.datasets.amlight import _build_truth_map, label_records
from repro.dataplane.topology import Topology
from repro.features import extract_features
from repro.int_telemetry import IntCollector, IntSink, PintSource, PintTransit, overhead_report
from repro.ml import (
    RandomForestClassifier,
    StandardScaler,
    classification_report,
    train_test_split,
)
from repro.traffic import Replayer, generate_benign, merge_traces, slowloris, syn_flood
from repro.traffic.benign import BenignConfig

SEC = 1_000_000_000
FRACTIONS = (1.0, 0.5, 0.25, 0.1)


def _workload(seed=5):
    benign = generate_benign(
        SERVER_IP, 80, 0, 20 * SEC,
        BenignConfig(sessions_per_s=4, mean_think_ns=3_000_000, rtt_ns=100_000),
        seed=seed,
    )
    flood = syn_flood(SERVER_IP, 80, 6 * SEC, 9 * SEC, rate_pps=4000, seed=seed + 1)
    slow = slowloris(0xC6336409, SERVER_IP, 80, 12 * SEC, 18 * SEC,
                     connections=8, keepalive_ns=100_000_000, seed=seed + 2)
    return merge_traces([benign, flood, slow])


def _capture(trace, fraction, seed=0):
    topo = Topology(name=f"pint-{fraction}")
    client = topo.add_host("client", "172.16.0.1")
    server = topo.add_host("server", SERVER_IP)
    sw = topo.add_switch("sw", 1)
    topo.connect_host_to_switch(client, sw, 1, 1e9)
    topo.connect_host_to_switch(server, sw, 2, 1e9)
    sw.add_route(SERVER_IP, 2)
    sw.set_default_route(1)
    col = IntCollector()
    PintSource(packet_fraction=fraction, seed=seed).attach(sw)
    PintTransit(hop_probability=1.0).attach(sw)
    IntSink(col).attach(sw)
    Replayer(
        topo,
        {"fwd": (sw, 1), "rev": (sw, 2)},
        classify=lambda row: "fwd" if row["dst_ip"] == SERVER_IP else "rev",
    ).replay(trace)
    return col.to_records()


def test_ablation_pint_overhead(benchmark):
    trace = _workload()
    truth = _build_truth_map(trace)

    def sweep():
        rows = []
        accs = {}
        for frac in FRACTIONS:
            records = _capture(trace, frac, seed=7)
            labels, _ = label_records(records, truth)
            fm = extract_features(records, source="int")
            Xtr, Xte, ytr, yte = train_test_split(fm.X, labels,
                                                  test_size=0.2, seed=0)
            sc = StandardScaler().fit(Xtr)
            rf = RandomForestClassifier(n_estimators=15, max_depth=12, seed=0)
            rf.fit(sc.transform(Xtr), ytr)
            rep = classification_report(yte, rf.predict(sc.transform(Xte)))
            over = overhead_report(records, total_packets=len(trace))
            accs[frac] = rep["accuracy"]
            rows.append((f"{frac:.0%}", len(records), rep["accuracy"],
                         rep["recall"],
                         round(over["mean_bytes_per_packet"], 2)))
        return accs, render_table(
            "Ablation: PINT temporal sampling — detection vs overhead",
            ("Sampled packets", "reports", "Accuracy", "Recall",
             "overhead B/pkt"),
            rows,
            note="overhead averaged over ALL packets on the path (the "
            "link-budget view); full INT pays shim+header+hop metadata "
            "on every packet",
        )

    accs, table = benchmark(sweep)
    print("\n" + table)

    assert accs[1.0] > 0.98
    # graceful degradation: half sampling costs almost nothing
    assert accs[0.5] > accs[1.0] - 0.03
    # even 10% sampling keeps a usable detector
    assert accs[0.1] > 0.90
