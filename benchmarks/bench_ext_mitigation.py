"""Extension bench: the detect→mitigate closed loop (paper future work).

Runs the live mechanism against a benign + spoofed-flood + scan mix
twice — detection-only vs detector-driven ACL enforcement — and measures
the attack load shed from the victim.  Quantifies what the paper's
planned mitigation stage would buy on this workload.
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.core import AutomatedDDoSDetector, pretrain_from_records
from repro.datasets import SERVER_IP, CampaignConfig, monitored_topology
from repro.datasets.amlight import _build_truth_map, label_records
from repro.mitigation import AclTable, MitigationEngine, MitigationPolicy, attach_acl
from repro.traffic import Replayer, generate_benign, merge_traces, syn_flood, syn_scan
from repro.traffic.benign import BenignConfig

SEC = 1_000_000_000
ATTACKER = 0xCB007107


def _workload(seed):
    benign = generate_benign(
        SERVER_IP, 80, 0, 12 * SEC,
        BenignConfig(sessions_per_s=4, mean_think_ns=3_000_000, rtt_ns=100_000),
        seed=seed,
    )
    flood = syn_flood(SERVER_IP, 80, 3 * SEC, 9 * SEC, rate_pps=2500, seed=seed + 1)
    scan = syn_scan(ATTACKER, SERVER_IP, 4 * SEC, 10 * SEC, rate_pps=400, seed=seed + 2)
    return merge_traces([benign, flood, scan])


def _pretrain():
    cfg = CampaignConfig.tiny()
    topo, col, _s, _a = monitored_topology(cfg)
    trace = _workload(seed=7)
    Replayer(
        topo,
        {"fwd": (topo.switches["edge_client"], 1),
         "rev": (topo.switches["edge_server"], 2)},
        classify=lambda row: "fwd" if row["dst_ip"] == SERVER_IP else "rev",
    ).replay(trace)
    records = col.to_records()
    labels, _ = label_records(records, _build_truth_map(trace))
    return pretrain_from_records(records, labels, source="int", seed=0)


def _run(bundle, mitigate):
    cfg = CampaignConfig.tiny()
    topo, int_col, _s, _a = monitored_topology(cfg)
    edge = topo.switches["edge_client"]
    server = topo.hosts["webserver"]
    acl = attach_acl(edge) if mitigate else AclTable()
    detector = AutomatedDDoSDetector(bundle, fast_poll=True)
    detector.attach_live(int_col)
    engine = None
    if mitigate:
        engine = MitigationEngine(
            [acl],
            MitigationPolicy(host_flow_threshold=4, spoof_source_threshold=40,
                             per_flow_rules=False),
        )
        engine.attach_to(detector)
    Replayer(
        topo,
        {"fwd": (edge, 1), "rev": (topo.switches["edge_server"], 2)},
        classify=lambda row: "fwd" if row["dst_ip"] == SERVER_IP else "rev",
    ).schedule(_workload(seed=31))
    while topo.events.peek_time() is not None:
        topo.run(max_events=2000)
        detector.live_cycle(budget=512)
    detector.finish()
    return server.received, acl, engine


def test_ext_closed_loop_mitigation(benchmark):
    bundle = _pretrain()

    def run_both():
        base, _, _ = _run(bundle, mitigate=False)
        mitigated, acl, engine = _run(bundle, mitigate=True)
        return base, mitigated, acl, engine

    # one round: each run simulates ~40k packets through the live loop
    base, mitigated, acl, engine = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    shed = base - mitigated
    print("\n" + render_table(
        "Extension: closed-loop mitigation (detection -> ACL enforcement)",
        ("Setup", "server packets", "dropped", "rate-limited", "rules"),
        [
            ("detection only", base, 0, 0, 0),
            ("closed loop", mitigated, acl.dropped, acl.rate_limited,
             len(engine.rules_emitted)),
        ],
        note=f"{shed / base:.0%} of the victim's load shed by "
        f"{len(engine.rules_emitted)} rules (host block + prefix rate limit)",
    ))

    # the loop must shed a large share of the attack-dominated load...
    assert shed / base > 0.4
    # ...via escalated rules, not per-flow whack-a-mole
    assert engine.stats()["hosts_blocked"] >= 1
    assert engine.stats()["services_rate_limited"] >= 1
    assert len(engine.rules_emitted) < 10
