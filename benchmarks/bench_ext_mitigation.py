"""Extension bench: the detect→mitigate closed loop (paper future work).

Runs the live mechanism against a benign + spoofed-flood + scan mix
twice — detection-only vs the fault-tolerant mitigation control plane
(:class:`~repro.mitigation.MitigationController` fed by an
:class:`~repro.controlplane.EpisodeBridge`, enforcing through the edge
switch's ACL) — and measures the attack load shed from the victim.
Quantifies what the paper's planned mitigation stage would buy on this
workload.
"""

from repro.analysis.tables import render_table
from repro.controlplane import EpisodeBridge
from repro.core import AutomatedDDoSDetector, pretrain_from_records
from repro.datasets import SERVER_IP, CampaignConfig, monitored_topology
from repro.datasets.amlight import _build_truth_map, label_records
from repro.mitigation import (
    AclTable,
    MitigationConfig,
    MitigationController,
    ThresholdRule,
    attach_acl,
)
from repro.traffic import Replayer, generate_benign, merge_traces, syn_flood, syn_scan
from repro.traffic.benign import BenignConfig

SEC = 1_000_000_000
ATTACKER = 0xCB007107

POLICY = MitigationConfig(
    rules=(
        ThresholdRule(name="hot-flow-block", pps_above=50.0, packets_above=3,
                      combine="and", scope="flow", action="block",
                      ttl_ns=30 * SEC),
    ),
    episode_rate_pps=60.0,
    episode_ttl_ns=60 * SEC,
)


def _workload(seed):
    benign = generate_benign(
        SERVER_IP, 80, 0, 12 * SEC,
        BenignConfig(sessions_per_s=4, mean_think_ns=3_000_000, rtt_ns=100_000),
        seed=seed,
    )
    flood = syn_flood(SERVER_IP, 80, 3 * SEC, 9 * SEC, rate_pps=2500, seed=seed + 1)
    scan = syn_scan(ATTACKER, SERVER_IP, 4 * SEC, 10 * SEC, rate_pps=400, seed=seed + 2)
    return merge_traces([benign, flood, scan])


def _pretrain():
    cfg = CampaignConfig.tiny()
    topo, col, _s, _a = monitored_topology(cfg)
    trace = _workload(seed=7)
    Replayer(
        topo,
        {"fwd": (topo.switches["edge_client"], 1),
         "rev": (topo.switches["edge_server"], 2)},
        classify=lambda row: "fwd" if row["dst_ip"] == SERVER_IP else "rev",
    ).replay(trace)
    records = col.to_records()
    labels, _ = label_records(records, _build_truth_map(trace))
    return pretrain_from_records(records, labels, source="int", seed=0)


def _run(bundle, mitigate):
    cfg = CampaignConfig.tiny()
    topo, int_col, _s, _a = monitored_topology(cfg)
    edge = topo.switches["edge_client"]
    server = topo.hosts["webserver"]
    acl = attach_acl(edge) if mitigate else AclTable()
    detector = AutomatedDDoSDetector(bundle, fast_poll=True)
    detector.attach_live(int_col)
    controller = None
    if mitigate:
        controller = MitigationController(POLICY, tables=[acl])
        controller.attach_to(detector)
        EpisodeBridge(controller).attach_inline(detector)
    Replayer(
        topo,
        {"fwd": (edge, 1), "rev": (topo.switches["edge_server"], 2)},
        classify=lambda row: "fwd" if row["dst_ip"] == SERVER_IP else "rev",
    ).schedule(_workload(seed=31))
    while topo.events.peek_time() is not None:
        topo.run(max_events=2000)
        detector.live_cycle(budget=512)
    detector.finish()
    return server.received, acl, controller


def test_ext_closed_loop_mitigation(benchmark):
    bundle = _pretrain()

    def run_both():
        base, _, _ = _run(bundle, mitigate=False)
        mitigated, acl, controller = _run(bundle, mitigate=True)
        return base, mitigated, acl, controller

    # one round: each run simulates ~40k packets through the live loop
    base, mitigated, acl, controller = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    shed = base - mitigated
    counters = controller.counters
    print("\n" + render_table(
        "Extension: closed-loop mitigation (controller -> ACL enforcement)",
        ("Setup", "server packets", "dropped", "rate-limited", "rules"),
        [
            ("detection only", base, 0, 0, 0),
            ("closed loop", mitigated, acl.dropped, acl.rate_limited,
             acl.installed),
        ],
        note=f"{shed / base:.0%} of the victim's load shed by "
        f"{acl.installed} rules ({counters['episode_escalations']} episode "
        "escalations: sweep-source block + service rate limit)",
    ))

    # the loop must shed a large share of the attack-dominated load...
    assert shed / base > 0.4
    # ...via escalated episode responses, not per-flow whack-a-mole
    assert counters["episode_escalations"] >= 2
    assert acl.installed < 10
    # the enforcement actually fired both ways: hard drops and shaping
    assert acl.dropped > 0 and acl.rate_limited > 0
