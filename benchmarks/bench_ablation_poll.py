"""Ablation: paper-faithful database scan vs indexed poll (§III-3, §V).

The paper's CentralServer 'continuously communicates with the database
to check whether there is an update in the records' — an O(resident
flows) scan per cycle.  The obvious production fix is an indexed
dirty-set.  This bench runs the live mechanism both ways on a
many-flow stream and compares the *database work* (records touched per
poll — deterministic, unlike wall-clock latency) and verifies the
detection outcome is identical.
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.core import AutomatedDDoSDetector, pretrain
from repro.features import extract_features
from repro.int_telemetry import REPORT_DTYPE
from repro.ml import GaussianNB, RandomForestClassifier

N_FLOWS = 2000
PKTS = 4


def _records(seed=0):
    """A stream with many concurrent flows (the scan cost driver)."""
    rng = np.random.default_rng(seed)
    rows = []
    t = 0
    for p in range(PKTS):
        for f in range(N_FLOWS):
            t += 20_000
            attack = f % 2 == 0
            rows.append((
                t, (0x01000000 if attack else 0xAC100000) + f, 0x0A0A0050,
                1000 + f, 80, 6, 2, 60 if attack else 1200,
                t % 2**32, t % 2**32, 0, 500, 3,
            ))
    rec = np.zeros(len(rows), dtype=REPORT_DTYPE)
    for i, r in enumerate(rows):
        rec[i] = r
    y = (rec["length"] < 200).astype(np.int64)
    return rec, y


def test_ablation_poll_strategy(benchmark):
    rec, y = _records()
    fm = extract_features(rec, source="int")
    bundle = pretrain(fm.X, y, fm.names, panel={
        "rf": lambda: RandomForestClassifier(n_estimators=5, max_depth=8, seed=0),
        "gnb": lambda: GaussianNB(),
    })

    def run_both():
        out = {}
        for mode, fast in (("scan (paper)", False), ("indexed", True)):
            det = AutomatedDDoSDetector(bundle, fast_poll=fast)
            db = det.run_stream(rec, poll_every=64, cycle_budget=128)
            decisions = [e.final_decision for e in db.predictions]
            out[mode] = {
                "decisions": decisions,
                "records_scanned": db.records_scanned,
                "polls": db.polls,
                "avg_latency_ms": float(np.mean(db.latencies_ns())) / 1e6,
            }
        return out

    out = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [
        (mode, r["polls"], r["records_scanned"],
         round(r["records_scanned"] / max(r["polls"], 1)),
         round(r["avg_latency_ms"], 2))
        for mode, r in out.items()
    ]
    print("\n" + render_table(
        "Ablation: database poll strategy",
        ("Poll", "polls", "records scanned", "scanned/poll",
         "avg latency (ms)"),
        rows,
        note=f"{N_FLOWS} concurrent flows; the paper-faithful poll walks "
        "every resident record each cycle — the §V scaling bottleneck",
    ))

    scan = out["scan (paper)"]
    indexed = out["indexed"]
    # identical detection outcomes: poll strategy is purely operational
    assert scan["decisions"] == indexed["decisions"]
    # the scan's database work grows with the resident-flow count...
    assert scan["records_scanned"] > N_FLOWS * 10
    # ...while the indexed poll touches no records at all during polls
    assert indexed["records_scanned"] == 0
