"""Regenerates Table VI: the live automated mechanism, per flow type.

Paper shape asserted: the trained attack types are detected at ≥0.99;
the zero-day SlowLoris still clears ~0.94 (paper: 0.9795); benign clears
0.94 (paper: 0.9417); per-update prediction latencies are finite and the
mean sits well below the max (backlog spikes), as in the paper's
latency columns.
"""

from repro.analysis.report import exp_table6


def test_table6_automated(benchmark, testbed):
    out = benchmark(exp_table6)
    print("\n" + out)
    rows = testbed.table6

    for trained in ("SYN Scan", "UDP Scan", "SYN Flood"):
        assert rows[trained]["accuracy"] > 0.99, trained
    assert rows["SlowLoris"]["accuracy"] > 0.90  # zero-day, paper 0.9795
    assert rows["Benign"]["accuracy"] > 0.94  # paper 0.9417

    for name, r in rows.items():
        assert r["predicted"] > 500, name
        assert 0 <= r["avg_time_s"] <= r["max_time_s"], name
