"""Ablation: 32-bit timestamp wrap handling (§V).

Quantifies the paper's Section V limitation.  We synthesize a capture of
slow flows whose inter-packet gaps straddle counter wraps, extract
features with wrap-aware and naive differencing, and measure (a) the
feature corruption and (b) its effect on a duration-sensitive detector.
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.features import extract_features
from repro.int_telemetry import REPORT_DTYPE, WRAP_PERIOD_NS


def _slow_capture(n_flows=200, pkts=12, gap_ns=1_500_000_000, seed=0):
    rng = np.random.default_rng(seed)
    rows = []
    for f in range(n_flows):
        t = int(rng.integers(0, WRAP_PERIOD_NS))
        for p in range(pkts):
            t += int(gap_ns * rng.uniform(0.8, 1.2))
            rows.append((t, 100 + f, 2, 1000 + f, 80, 6, 0, 80,
                         t % WRAP_PERIOD_NS, t % WRAP_PERIOD_NS, 0, 100, 3))
    rec = np.zeros(len(rows), dtype=REPORT_DTYPE)
    for i, r in enumerate(rows):
        rec[i] = r
    order = np.argsort(rec["ts_report"], kind="stable")
    return rec[order]


def test_ablation_timestamp_wrap(benchmark):
    rec = _slow_capture()

    def run():
        aware = extract_features(rec, source="int", wrap_mode="aware")
        naive = extract_features(rec, source="int", wrap_mode="naive")
        return aware, naive

    aware, naive = benchmark(run)
    dur = aware.names.index("inter_arrival_cum")
    last = aware.packet_index == aware.packet_index.max()
    true_dur = aware.X[last, dur]
    naive_dur = naive.X[last, dur]
    underestimate = 1.0 - naive_dur.mean() / true_dur.mean()

    print("\n" + render_table(
        "Ablation: timestamp wrap handling on slow flows (1.5 s gaps)",
        ("Mode", "mean flow duration (s)", "duration error"),
        [
            ("wrap-aware", float(true_dur.mean()), "0%"),
            ("naive (paper §V failure)", float(naive_dur.mean()),
             f"-{underestimate:.0%}"),
        ],
        note="naive differencing clamps every wrapped gap to zero, so "
        "slow flows appear dramatically shorter and burstier",
    ))

    # the corruption must be substantial: with 1.5 s gaps, ~35% of gaps wrap
    assert underestimate > 0.2
    assert (true_dur > naive_dur + 1.0).all()
