"""Regenerates Fig 3: RF confusion matrix on INT data.

Paper shape: errors are a vanishing fraction of the test set (paper:
186 + 126 misclassified out of ~1.8 M packets).
"""

import numpy as np

from repro.analysis.report import exp_fig3


def test_fig3_confusion_int(benchmark, offline):
    out = benchmark(exp_fig3)
    print("\n" + out)
    cm = offline.int_res.cm_rf_split
    total = cm.sum()
    errors = total - np.trace(cm)
    assert errors / total < 0.01  # paper error rate ~2e-4
    assert cm[1, 1] > 0  # attacks present and detected
