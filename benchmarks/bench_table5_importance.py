"""Regenerates Table V: top-5 features per model (INT data).

Paper shape asserted: packet-size and inter-arrival variants dominate
the top-5 lists, and some feature families recur across several models.
"""

import numpy as np

from repro.analysis.report import exp_table5, top_k


def test_table5_importance(benchmark, offline):
    out = benchmark(exp_table5)
    print("\n" + out)

    names = offline.int_res.fm.names
    families = {"packet_size", "inter_arrival", "queue_occupancy",
                "protocol", "n_packets", "packets_per_second",
                "bytes_per_second"}

    def family(feat):
        for f in sorted(families, key=len, reverse=True):
            if feat.startswith(f):
                return f
        return feat

    top_families = set()
    for model, imp in offline.int_res.importances.items():
        top = [name for name, _ in top_k(imp, names, 5)]
        top_families |= {family(t) for t in top}
        # size or timing features appear in every model's top-5 (paper)
        assert any(
            t.startswith("packet_size") or t.startswith("inter_arrival")
            for t in top
        ), (model, top)
    # multiple feature families matter, not just one
    assert len(top_families) >= 2
