"""Regenerates Table III: ML performance, INT vs sFlow (90:10 split).

Paper shape asserted: every INT model performs at the ≥0.97 level with
the tree/instance models ≥0.99; sFlow's best models reach comparable
accuracy despite training on ~500× less data; GNB is never the best
model on either source.
"""

from repro.analysis.report import exp_table3


def test_table3_models(benchmark, offline):
    out = benchmark(exp_table3)
    print("\n" + out)

    t_int = offline.int_res.table3
    t_sf = offline.sflow_res.table3

    # INT: high across the board (paper: >= 0.9978)
    for name, rep in t_int.items():
        assert rep["accuracy"] > 0.97, (name, rep["accuracy"])
    assert t_int["RF"]["accuracy"] > 0.995
    assert t_int["KNN"]["accuracy"] > 0.995

    # sFlow: the strong models stay comparable to INT (paper's headline)
    best_sflow = max(rep["accuracy"] for rep in t_sf.values())
    assert best_sflow > 0.9

    # GNB is the weakest family member on each source (paper ordering)
    assert t_int["GNB"]["f1"] <= max(r["f1"] for r in t_int.values())
    assert t_sf["GNB"]["accuracy"] <= best_sflow
