"""Ablation: queue-occupancy features on/off (§V).

The paper notes their 100 Gbps testbed left queue occupancy nearly
untouched, yet Table V still ranks occupancy statistics among the top
features.  This ablation drops the three queue columns from the INT
feature set and re-trains: on our 1 Gbps bottleneck the loss should be
small (occupancy is informative but not load-bearing), quantifying how
much the INT-only features actually buy.
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.datasets import cached_dataset
from repro.features import extract_features
from repro.ml import (
    RandomForestClassifier,
    StandardScaler,
    classification_report,
    train_test_split,
)

QUEUE_COLS = ("queue_occupancy", "queue_occupancy_avg", "queue_occupancy_std")


def _fit_score(X, y, seed=0):
    Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.1, seed=seed)
    sc = StandardScaler().fit(Xtr)
    rf = RandomForestClassifier(n_estimators=20, max_depth=14,
                                max_samples=30000, seed=seed)
    rf.fit(sc.transform(Xtr), ytr)
    return classification_report(yte, rf.predict(sc.transform(Xte)))


def test_ablation_queue_features(benchmark, dataset):
    fm = extract_features(dataset.int_records, source="int")
    keep = [i for i, n in enumerate(fm.names) if n not in QUEUE_COLS]

    def run():
        full = _fit_score(fm.X, dataset.int_labels)
        stripped = _fit_score(fm.X[:, keep], dataset.int_labels)
        return full, stripped

    full, stripped = benchmark(run)
    print("\n" + render_table(
        "Ablation: queue-occupancy features",
        ("Feature set", "Accuracy", "Recall", "Precision", "F1"),
        [
            ("all 15 INT features", full["accuracy"], full["recall"],
             full["precision"], full["f1"]),
            ("without queue occupancy (12)", stripped["accuracy"],
             stripped["recall"], stripped["precision"], stripped["f1"]),
        ],
        note="mirrors §V: occupancy carries signal but the detector does "
        "not depend on it at these utilizations",
    ))
    assert full["accuracy"] > 0.99
    # removing occupancy must not collapse the detector (paper §V)
    assert stripped["accuracy"] > full["accuracy"] - 0.02
