"""Ablation: 2-of-3 ensemble vote vs each panel member alone (§IV-C4).

Under the zero-day protocol (June 11 held out), each live-panel model
(MLP, RF, GNB) is scored alone and as the majority vote.  The paper's
motivation for voting — individual anomaly models are 'prone to false
alarms' — shows up as the vote dominating the weakest member and
stabilizing SlowLoris detection.
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.datasets import cached_dataset
from repro.features import extract_features
from repro.ml import (
    GaussianNB,
    MLPClassifier,
    RandomForestClassifier,
    StandardScaler,
    classification_report,
    majority_vote,
)
from repro.traffic import AttackType


def test_ablation_ensemble_vote(benchmark):
    ds = cached_dataset("small")
    fm = extract_features(ds.int_records, source="int")
    test = ds.int_records["ts_report"] >= ds.day_start_ns(11)
    Xtr, ytr = fm.X[~test], ds.int_labels[~test]
    Xte, yte = fm.X[test], ds.int_labels[test]
    sl = ds.int_types[test] == int(AttackType.SLOWLORIS)

    scaler = StandardScaler().fit(Xtr)
    Xtr_s, Xte_s = scaler.transform(Xtr), scaler.transform(Xte)
    panel = {
        "MLP": MLPClassifier((64, 32, 16), max_epochs=60, seed=0),
        "RF": RandomForestClassifier(n_estimators=25, max_depth=14,
                                     max_samples=30000, seed=0),
        "GNB": GaussianNB(),
    }
    preds = {}
    for name, model in panel.items():
        model.fit(Xtr_s, ytr)
        preds[name] = model.predict(Xte_s)
    vote = majority_vote(np.column_stack(list(preds.values())))
    preds["2-of-3 vote"] = vote

    def render():
        rows = []
        for name, p in preds.items():
            rep = classification_report(yte, p)
            rows.append((name, rep["accuracy"], rep["recall"],
                         rep["precision"], float(p[sl].mean())))
        return render_table(
            "Ablation: ensemble vote vs single models (zero-day split)",
            ("Detector", "Accuracy", "Recall", "Precision", "SlowLoris recall"),
            rows,
        )

    print("\n" + benchmark(render))

    reports = {n: classification_report(yte, p) for n, p in preds.items()}
    vote_acc = reports["2-of-3 vote"]["accuracy"]
    singles = [reports[n]["accuracy"] for n in ("MLP", "RF", "GNB")]
    # the vote beats the weakest member and stays near the best
    assert vote_acc >= min(singles)
    assert vote_acc >= max(singles) - 0.02
